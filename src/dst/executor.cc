#include "src/dst/executor.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "src/core/system.h"
#include "src/dst/reference_model.h"
#include "src/hypervisor/invariants.h"
#include "src/sched/scheduler.h"
#include "src/toolstack/domain_config.h"
#include "src/xenstore/path.h"

namespace nephele {

std::uint64_t DstHash64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

// The counters whose deltas the model predicts on cleanly-modelled ops.
// While any fault point is armed (or after an op with unmodelled side
// effects, e.g. a rolled-back batch's create/destroy churn) the executor
// re-baselines from the registry instead of comparing.
constexpr const char* kTrackedCounters[] = {
    "clone/clones_total",         "clone/batches_total",
    "clone/reset/count",          "clone/reset/pages_restored",
    "clone/rolled_back",          "xencloned/clones_completed",
    "xencloned/clones_aborted",   "toolstack/domains_booted",
    "toolstack/domains_restored",  "toolstack/domains_destroyed",
    "hypervisor/domains/created", "hypervisor/domains/destroyed",
    "clone/lazy/clones",          "clone/streamed_pages",
    "clone/lazy/demand_faults",
};

std::string EncodeDevioValue(std::uint32_t v) {
  // Letters only, so xs_clone's domid-rewriting heuristics can never touch
  // the value and the model's verbatim-copy expectation holds.
  std::string out = "v";
  do {
    out.push_back(static_cast<char>('a' + v % 10));
    v /= 10;
  } while (v != 0);
  return out;
}

class Executor {
 public:
  Executor(const Scenario& scenario, const RunOptions& options)
      : scenario_(scenario), options_(options) {}

  RunResult Run();

 private:
  void ExecuteOp(const Op& op, std::size_t index);
  void OpLaunch(const Op& op);
  void OpClone(const Op& op, bool lazy);
  void OpWrite(const Op& op);
  void OpTouchUnmapped(const Op& op);
  // Shared tail of kCowWrite and kTouchUnmapped: performs the tracked-cell
  // write, predicting the demand-fault materialisations it must cause.
  void WriteCell(DomId dom, std::uint32_t slot, std::uint8_t value);
  void OpReset(const Op& op);
  void OpDestroy(const Op& op);
  void OpMigrateOut(const Op& op);
  void OpMigrateIn(const Op& op);
  void OpArm(const Op& op);
  void OpDevio(const Op& op);
  void OpSchedAcquire(const Op& op);
  void OpSchedRelease(const Op& op);
  void WireScheduler();

  // --- Oracle. Each check returns "" or a failure message. ---
  void RunOracle(std::size_t op_index);
  std::string CheckLiveSet();
  std::string CheckTopology();
  std::string CheckCells();
  std::string CheckXenstore();
  std::string CheckFrames();
  std::string CheckHvState();
  std::string CheckCounters();

  void Fail(std::string kind, std::size_t op, std::string message) {
    if (result_.ok()) {
      result_.fail_kind = std::move(kind);
      result_.fail_op = op;
      result_.message = std::move(message);
    }
  }

  DomId Pick(std::uint32_t index) const { return live_[index % live_.size()]; }
  Mfn StartInfoMfn(DomId dom) const {
    const Domain* d = sys_->hypervisor().FindDomain(dom);
    return d->p2m[d->start_info_gfn].mfn;
  }
  Gfn CellGfn(std::uint32_t slot) const {
    return heap0_ + static_cast<Gfn>(ReferenceModel::SlotPage(slot % ReferenceModel::kCells));
  }

  // --- Post-copy (lazy clone) predictions. The engine counts every hook
  // materialisation — the writer's own fault and parent-write pushes — in
  // clone/lazy/demand_faults; mirror its decision by peeking p2m presence
  // before the op runs. ---
  std::size_t PredictDemandFaults(DomId dom, Gfn gfn) const {
    const CloneEngine& engine = sys_->clone_engine();
    const Domain* d = sys_->hypervisor().FindDomain(dom);
    if (d == nullptr || gfn >= d->p2m.size()) {
      return 0;
    }
    if (engine.IsStreaming(dom) && d->p2m[gfn].mfn == kInvalidMfn) {
      return 1;  // the writer demand-faults its own deferred page
    }
    // A parent write pushes the pre-write frame to every streaming child
    // still deferring this gfn, one demand fault each.
    std::size_t pushes = 0;
    for (DomId child : live_) {
      const Domain* c = sys_->hypervisor().FindDomain(child);
      if (c != nullptr && c->parent == dom && engine.IsStreaming(child) &&
          gfn < c->p2m.size() && c->p2m[gfn].mfn == kInvalidMfn) {
        ++pushes;
      }
    }
    return pushes;
  }
  // Pages force-streamed when `dom`'s streaming children must finish
  // (clone_reset of dom, destroy of dom).
  std::size_t PendingChildStreamPages(DomId dom) const {
    std::size_t pending = 0;
    for (DomId child : live_) {
      const Domain* c = sys_->hypervisor().FindDomain(child);
      if (c != nullptr && c->parent == dom) {
        pending += sys_->clone_engine().PendingStreamPages(child);
      }
    }
    return pending;
  }

  void Expect(std::string_view counter, std::uint64_t delta) { expected_[std::string(counter)] += delta; }
  void ResyncCounters() {
    for (const char* name : kTrackedCounters) {
      expected_[name] = sys_->metrics().CounterValue(name);
    }
  }

  void Edge(std::uint32_t value) { result_.edges.push_back(value % 0x10000u); }
  void OpEdges(const Op& op, int code) {
    auto k = static_cast<std::uint32_t>(op.kind);
    Edge(static_cast<std::uint32_t>(DstHash64("op") * 31 + k * 17 + static_cast<std::uint32_t>(code)));
    Edge(static_cast<std::uint32_t>((prev_kind_ * 41 + k) * 13 + static_cast<std::uint32_t>(code)));
    std::uint32_t live_bucket = static_cast<std::uint32_t>(std::min<std::size_t>(live_.size(), 7));
    Edge(k * 257 + live_bucket * 29 + (faults_armed_ ? 7919 : 0));
    prev_kind_ = k;
  }

  const Scenario& scenario_;
  const RunOptions& options_;
  RunResult result_;

  std::unique_ptr<NepheleSystem> sys_;
  std::unique_ptr<CloneScheduler> sched_;  // after sys_: destroyed first
  ReferenceModel model_;
  std::vector<DomId> live_;            // creation order; op.dom indexes this
  std::vector<DomId> dead_;            // destroyed ids (never reused)
  std::vector<DomId> granted_;         // scheduler grants eligible for release
  std::vector<MigrationStream> streams_;
  std::map<std::string, std::uint64_t> expected_;
  bool faults_armed_ = false;
  std::size_t initial_free_ = 0;
  Gfn heap0_ = 0;
  std::size_t guest_pages_ = 0;
  std::uint32_t prev_kind_ = 0;
  std::ostringstream log_;
};

RunResult Executor::Run() {
  SystemConfig config;
  config.hypervisor.pool_frames = scenario_.pool_frames;
  config.clone_worker_threads = options_.force_workers != 0 ? options_.force_workers : 1;
  // Fixed, tight scheduler knobs so scenarios exercise batching, warm-pool
  // reuse and queue-full rejection with few ops. The 1 ms window and 100 ms
  // timeout both drain inside each op's Settle, so every scheduler decision
  // lands within the op that caused it.
  config.sched.batch_window = SimDuration::Millis(1);
  config.sched.max_batch = 4;
  config.sched.warm_pool_capacity = 2;
  config.sched.max_queue_depth = 4;
  config.sched.request_timeout = SimDuration::Millis(100);
  // Manual streaming: the prefetcher never self-schedules; ExecuteOp pumps
  // exactly one batch after every op, so each op sits in a deterministic
  // mid-stream window. max_hot_pages = 0 keeps the tracked heap pages out of
  // the hot set (beyond the explicit one-page hint a clone_lazy op carries),
  // so touch_unmapped reliably finds not-present entries to demand-fault.
  config.lazy_clone.auto_stream = false;
  config.lazy_clone.stream_batch_pages = 256;
  config.lazy_clone.max_hot_pages = 0;
  sys_ = std::make_unique<NepheleSystem>(config);
  sched_ = std::make_unique<CloneScheduler>(*sys_);
  WireScheduler();
  sys_->Settle();
  initial_free_ = sys_->hypervisor().FreePoolFrames();

  GuestMemoryLayout layout =
      ComputeGuestLayout(DstGuestConfig(), sys_->hypervisor().config().min_domain_pages);
  heap0_ = static_cast<Gfn>(layout.heap_first_gfn);
  guest_pages_ = layout.total_pages;
  ResyncCounters();

  for (std::size_t i = 0; i < scenario_.ops.size(); ++i) {
    const Op& op = scenario_.ops[i];
    log_ << i << ' ' << OpKindName(op.kind);
    ExecuteOp(op, i);
    log_ << '\n';
    ++result_.ops_executed;
    if (options_.after_op) {
      options_.after_op(*sys_, op, i);
    }
    RunOracle(i);
    if (!result_.ok()) {
      result_.digest = log_.str();
      return std::move(result_);
    }
  }

  // Teardown: everything down in reverse creation order; the pool must
  // return to its boot level (absolute frame conservation).
  std::vector<DomId> doomed(live_.rbegin(), live_.rend());
  for (DomId dom : doomed) {
    Op destroy;
    destroy.kind = OpKind::kDestroy;
    auto it = std::find(live_.begin(), live_.end(), dom);
    destroy.dom = static_cast<std::uint32_t>(it - live_.begin());
    log_ << "teardown " << dom;
    OpDestroy(destroy);
    log_ << '\n';
  }
  RunOracle(scenario_.ops.size());
  if (result_.ok() && sys_->hypervisor().FreePoolFrames() != initial_free_) {
    Fail("teardown", scenario_.ops.size(),
         "pool did not return to boot level: free=" +
             std::to_string(sys_->hypervisor().FreePoolFrames()) + " vs initial " +
             std::to_string(initial_free_));
  }

  log_ << "metrics " << DstHash64(sys_->metrics().ExportJson()) << '\n';
  log_ << "trace " << DstHash64(sys_->trace().ExportJson()) << '\n';
  log_ << "simtime " << sys_->Now().ns() << '\n';
  result_.digest = log_.str();
  return std::move(result_);
}

void Executor::ExecuteOp(const Op& op, std::size_t index) {
  (void)index;
  switch (op.kind) {
    case OpKind::kLaunchGuest:
      OpLaunch(op);
      break;
    case OpKind::kCloneBatch:
      if (live_.empty()) {
        log_ << " skip";
      } else {
        OpClone(op, /*lazy=*/false);
      }
      break;
    case OpKind::kCloneLazy:
      if (live_.empty()) {
        log_ << " skip";
      } else {
        OpClone(op, /*lazy=*/true);
      }
      break;
    case OpKind::kTouchUnmapped:
      if (live_.empty()) {
        log_ << " skip";
      } else {
        OpTouchUnmapped(op);
      }
      break;
    case OpKind::kCowWrite:
      if (live_.empty()) {
        log_ << " skip";
      } else {
        OpWrite(op);
      }
      break;
    case OpKind::kCloneReset:
      if (live_.empty()) {
        log_ << " skip";
      } else {
        OpReset(op);
      }
      break;
    case OpKind::kDestroy:
      if (live_.empty()) {
        log_ << " skip";
      } else {
        OpDestroy(op);
      }
      break;
    case OpKind::kMigrateOut:
      if (live_.empty()) {
        log_ << " skip";
      } else {
        OpMigrateOut(op);
      }
      break;
    case OpKind::kMigrateIn:
      if (streams_.empty()) {
        log_ << " skip";
      } else {
        OpMigrateIn(op);
      }
      break;
    case OpKind::kArmFault:
      OpArm(op);
      break;
    case OpKind::kDisarmFaults:
      sys_->fault_injector().DisarmAll();
      faults_armed_ = false;
      // Injections may have perturbed untracked paths mid-window; start a
      // fresh exact-comparison epoch.
      ResyncCounters();
      break;
    case OpKind::kDeviceIo:
      if (live_.empty()) {
        log_ << " skip";
      } else {
        OpDevio(op);
      }
      break;
    case OpKind::kAdvanceTime:
      sys_->loop().AdvanceBy(SimDuration::Nanos(
          static_cast<std::int64_t>(std::min<std::uint64_t>(op.amount, 1'000'000'000ULL))));
      break;
    case OpKind::kSchedAcquire:
      if (live_.empty()) {
        log_ << " skip";
      } else {
        OpSchedAcquire(op);
      }
      break;
    case OpKind::kSchedRelease:
      if (granted_.empty()) {
        log_ << " skip";
      } else {
        OpSchedRelease(op);
      }
      break;
  }
  // Advance every in-flight post-copy stream by one manual batch, so lazy
  // children make progress between ops and the oracle sees each partially
  // mapped intermediate state. Scenarios without lazy clones pump nothing
  // and keep their digests byte-identical.
  const std::size_t pumped = sys_->clone_engine().StreamPump(1);
  if (pumped > 0) {
    Expect("clone/streamed_pages", pumped);
    log_ << " p" << pumped;
  }
  OpEdges(op, 0);
}

void Executor::OpLaunch(const Op&) {
  auto dom = sys_->toolstack().CreateDomain(DstGuestConfig());
  sys_->Settle();
  log_ << ' ' << static_cast<int>(dom.status().code());
  if (dom.ok()) {
    log_ << " dom=" << *dom;
    live_.push_back(*dom);
    model_.Launch(*dom);
    Expect("toolstack/domains_booted", 1);
    Expect("hypervisor/domains/created", 1);
  } else {
    // A failed boot unwinds itself (FailBoot) with create/destroy churn the
    // counter model does not predict.
    ResyncCounters();
  }
}

void Executor::OpClone(const Op& op, bool lazy) {
  DomId parent = Pick(op.dom);
  unsigned workers = options_.force_workers;
  if (workers == 0 && op.workers != 0) {
    workers = 1 + (op.workers - 1) % 8;
    sys_->clone_engine().SetWorkerThreads(workers);
  }
  const unsigned n = 1 + (op.n - 1) % 8;
  const bool would_validate = model_.CloneWouldValidate(parent, DstGuestConfig().max_clones, n);
  const std::uint64_t rolled_back_before = sys_->metrics().CounterValue("clone/rolled_back");
  // A still-streaming parent finishes its own stream before it clones.
  const std::size_t parent_pending = sys_->clone_engine().PendingStreamPages(parent);

  CloneRequest req(parent, parent, StartInfoMfn(parent), n, lazy);
  if (lazy) {
    // The op's slot hints one tracked page hot, so every lazy scenario
    // exercises both sides of the hot/deferred split on oracle-visible pages.
    req.hot_pages.push_back(
        heap0_ + static_cast<Gfn>(op.slot % ReferenceModel::kTrackedPages));
  }
  auto children = sys_->clone_engine().Clone(req);
  sys_->Settle();
  log_ << ' ' << static_cast<int>(children.status().code()) << " parent=" << parent << " n=" << n;

  if (children.ok()) {
    Expect("clone/streamed_pages", parent_pending);
    if (lazy) {
      Expect("clone/lazy/clones", n);
    }
    model_.CloneBatchPlanned(parent, n);
    unsigned aborted = 0;
    for (DomId child : *children) {
      if (sys_->hypervisor().FindDomain(child) != nullptr) {
        live_.push_back(child);
        model_.CloneChild(parent, child);
        log_ << " c" << child;
      } else {
        // Second stage failed; the abort path already destroyed the child.
        ++aborted;
        dead_.push_back(child);
        log_ << " a" << child;
      }
    }
    Expect("clone/batches_total", 1);
    Expect("clone/clones_total", n);
    Expect("hypervisor/domains/created", n);
    Expect("xencloned/clones_completed", n - aborted);
    Expect("xencloned/clones_aborted", aborted);
    // Every stage-2 abort retires its pending slot through CloneAborted,
    // which counts as a rollback and destroys the child.
    Expect("clone/rolled_back", aborted);
    Expect("hypervisor/domains/destroyed", aborted);
  } else if (!would_validate && !faults_armed_) {
    // Admission-control rejection: no batch was planned, nothing changed.
  } else {
    if (!faults_armed_) {
      // The model admitted the batch, so the failure happened mid-plan
      // (resource exhaustion) and must have been rolled back exactly once.
      const std::uint64_t rolled_back_now = sys_->metrics().CounterValue("clone/rolled_back");
      if (rolled_back_now != rolled_back_before + 1) {
        Fail("counters", result_.ops_executed,
             "failed clone did not roll back exactly once: " + children.status().ToString());
      }
    }
    // Rollback churns created/destroyed counters; re-baseline.
    ResyncCounters();
  }
}

void Executor::OpWrite(const Op& op) {
  WriteCell(Pick(op.dom), op.slot % ReferenceModel::kCells,
            static_cast<std::uint8_t>(op.value));
}

void Executor::OpTouchUnmapped(const Op& op) {
  DomId dom = Pick(op.dom);
  const Domain* d = sys_->hypervisor().FindDomain(dom);
  // Aim at a tracked page the domain still defers (scanning from the op's
  // slot so different slots hit different pages); when the domain defers
  // nothing this degrades to an ordinary tracked-cell write.
  std::uint32_t page = op.slot % ReferenceModel::kTrackedPages;
  for (std::size_t probe = 0; probe < ReferenceModel::kTrackedPages; ++probe) {
    const std::uint32_t candidate =
        static_cast<std::uint32_t>((page + probe) % ReferenceModel::kTrackedPages);
    if (d->p2m[heap0_ + candidate].mfn == kInvalidMfn) {
      page = candidate;
      break;
    }
  }
  WriteCell(dom, page * static_cast<std::uint32_t>(ReferenceModel::kSlotsPerPage),
            static_cast<std::uint8_t>(op.value));
}

void Executor::WriteCell(DomId dom, std::uint32_t slot, std::uint8_t value) {
  const std::size_t demand = PredictDemandFaults(dom, CellGfn(slot));
  Status status = sys_->hypervisor().WriteGuestPage(
      dom, CellGfn(slot), ReferenceModel::SlotOffset(slot), &value, 1);
  sys_->Settle();
  log_ << ' ' << static_cast<int>(status.code()) << " dom=" << dom << " slot=" << slot;
  if (status.ok()) {
    model_.Write(dom, slot, value);
    Expect("clone/lazy/demand_faults", demand);
  } else {
    if (!faults_armed_ && status.code() != StatusCode::kResourceExhausted) {
      Fail("op-status", result_.ops_executed,
           "guest write failed without faults armed: " + status.ToString());
    }
    // A failed write can still have materialised some pushes before the
    // injected error hit; re-baseline instead of predicting the partial.
    ResyncCounters();
  }
}

void Executor::OpReset(const Op& op) {
  DomId dom = Pick(op.dom);
  const bool can_reset = model_.CanReset(dom);
  // Reset finishes the target's own stream and the streams of its streaming
  // children (their deferred pages reference frames the reset re-shares).
  const std::size_t stream_pending =
      sys_->clone_engine().PendingStreamPages(dom) + PendingChildStreamPages(dom);
  auto restored = sys_->clone_engine().CloneReset(kDom0, dom);
  sys_->Settle();
  log_ << ' ' << static_cast<int>(restored.status().code()) << " dom=" << dom;
  if (restored.ok()) {
    Expect("clone/streamed_pages", stream_pending);
    if (!can_reset && !faults_armed_) {
      Fail("op-status", result_.ops_executed,
           "clone_reset succeeded for a domain the model says has no live parent");
      return;
    }
    const std::size_t predicted = model_.Reset(dom);
    log_ << " restored=" << *restored;
    if (*restored != predicted) {
      Fail("cells", result_.ops_executed,
           "clone_reset restored " + std::to_string(*restored) + " pages, model predicts " +
               std::to_string(predicted));
    }
    Expect("clone/reset/count", 1);
    Expect("clone/reset/pages_restored", predicted);
  } else if (can_reset && !faults_armed_) {
    Fail("op-status", result_.ops_executed,
         "clone_reset failed for a resettable clone: " + restored.status().ToString());
  }
}

void Executor::OpDestroy(const Op& op) {
  DomId dom = Pick(op.dom);
  // Destroying the parent of streaming children force-finishes their
  // streams (the frames they defer are about to be released); destroying a
  // streaming child just abandons its own stream.
  const std::size_t stream_pending = PendingChildStreamPages(dom);
  Status status = sys_->toolstack().DestroyDomain(dom);
  if (sys_->hypervisor().FindDomain(dom) != nullptr) {
    status = sys_->hypervisor().DestroyDomain(dom);
  }
  sys_->Settle();
  log_ << ' ' << static_cast<int>(status.code()) << " dom=" << dom;
  if (sys_->hypervisor().FindDomain(dom) == nullptr) {
    sched_->Forget(dom);  // the scheduler must not serve a destroyed child warm
    model_.Destroy(dom);
    live_.erase(std::remove(live_.begin(), live_.end(), dom), live_.end());
    granted_.erase(std::remove(granted_.begin(), granted_.end(), dom), granted_.end());
    dead_.push_back(dom);
    Expect("toolstack/domains_destroyed", 1);
    Expect("hypervisor/domains/destroyed", 1);
    Expect("clone/streamed_pages", stream_pending);
  } else if (!faults_armed_) {
    Fail("op-status", result_.ops_executed, "destroy left the domain alive: " + status.ToString());
  } else {
    ResyncCounters();
  }
}

void Executor::OpMigrateOut(const Op& op) {
  DomId dom = Pick(op.dom);
  const bool can_migrate = model_.CanMigrateOut(dom);
  auto stream = sys_->toolstack().MigrateOut(dom);
  sys_->Settle();
  log_ << ' ' << static_cast<int>(stream.status().code()) << " dom=" << dom;
  if (stream.ok()) {
    if (!can_migrate && !faults_armed_) {
      Fail("op-status", result_.ops_executed,
           "migrate-out accepted a domain with family relations");
      return;
    }
    streams_.push_back(std::move(*stream));
    model_.MigrateOut(dom);
    live_.erase(std::remove(live_.begin(), live_.end(), dom), live_.end());
    dead_.push_back(dom);
    Expect("toolstack/domains_destroyed", 1);
    Expect("hypervisor/domains/destroyed", 1);
  } else if (can_migrate && !faults_armed_) {
    Fail("op-status", result_.ops_executed,
         "migrate-out failed for an unrelated domain: " + stream.status().ToString());
  }
}

void Executor::OpMigrateIn(const Op& op) {
  const MigrationStream& stream = streams_[op.slot % streams_.size()];
  auto dom = sys_->toolstack().MigrateIn(stream);
  sys_->Settle();
  log_ << ' ' << static_cast<int>(dom.status().code());
  if (dom.ok()) {
    log_ << " dom=" << *dom;
    live_.push_back(*dom);
    model_.MigrateIn(op.slot % streams_.size(), *dom);
    // Only image-based RestoreDomain counts as "restored"; stream
    // immigration books a plain hypervisor create.
    Expect("hypervisor/domains/created", 1);
  } else {
    ResyncCounters();  // failed immigration unwinds with unmodelled churn
  }
}

void Executor::WireScheduler() {
  // Scheduled batches run through the ordinary engine path; the wrapper adds
  // the model/counter bookkeeping OpClone would do for a direct batch and
  // logs the dispatch so batching decisions are part of the digest.
  sched_->SetCloneExecutor([this](const CloneRequest& req) {
    const std::size_t parent_pending =
        sys_->clone_engine().PendingStreamPages(req.parent);
    auto children = sys_->clone_engine().Clone(req);
    log_ << " B" << req.parent << "x" << req.num_children << "t" << sys_->Now().ns() << "s"
         << static_cast<int>(children.status().code());
    if (children.ok()) {
      model_.CloneBatchPlanned(req.parent, req.num_children);
      Expect("clone/streamed_pages", parent_pending);
      Expect("clone/batches_total", 1);
      Expect("clone/clones_total", req.num_children);
      Expect("hypervisor/domains/created", req.num_children);
      Expect("xencloned/clones_completed", req.num_children);
    } else {
      // Mid-plan failures roll back with churn the counter model does not
      // predict (same as a failed direct batch).
      ResyncCounters();
    }
    return children;
  });
  // Evictions and fallback destroys tear the child down behind the op
  // stream's back; mirror them into the model and the live/dead lists.
  sched_->SetEvictFn([this](DomId dom) {
    const std::size_t stream_pending = PendingChildStreamPages(dom);
    (void)sys_->toolstack().DestroyDomain(dom);
    if (sys_->hypervisor().FindDomain(dom) != nullptr) {
      (void)sys_->hypervisor().DestroyDomain(dom);
    }
    log_ << " E" << dom;
    if (sys_->hypervisor().FindDomain(dom) == nullptr) {
      model_.Destroy(dom);
      live_.erase(std::remove(live_.begin(), live_.end(), dom), live_.end());
      granted_.erase(std::remove(granted_.begin(), granted_.end(), dom), granted_.end());
      dead_.push_back(dom);
      Expect("toolstack/domains_destroyed", 1);
      Expect("hypervisor/domains/destroyed", 1);
      Expect("clone/streamed_pages", stream_pending);
    } else {
      ResyncCounters();
    }
  });
}

void Executor::OpSchedAcquire(const Op& op) {
  DomId parent = Pick(op.dom);
  // Deliberately allowed past max_queue_depth (4) so scenarios can force a
  // deterministic wholesale queue-full rejection.
  const unsigned n = 1 + (op.n - 1) % 6;
  CloneRequest req;
  req.caller = kDom0;
  req.parent = parent;
  req.start_info_mfn = StartInfoMfn(parent);
  req.num_children = n;

  auto outcomes = std::make_shared<std::vector<Result<DomId>>>();
  Status status = sched_->Acquire(
      req, [outcomes](Result<DomId> r) { outcomes->push_back(std::move(r)); });
  // The 1 ms window, the batch itself and the 100 ms ticket timeouts all
  // drain here, so every grant outcome is in `outcomes` after Settle.
  sys_->Settle();
  log_ << ' ' << static_cast<int>(status.code()) << " parent=" << parent << " n=" << n;

  if (!status.ok()) {
    const bool oversized = n > sched_->config().max_queue_depth;
    if (!faults_armed_) {
      if (!oversized) {
        Fail("op-status", result_.ops_executed,
             "sched acquire rejected a request the empty queue could take: " +
                 status.ToString());
      } else if (status.code() != StatusCode::kResourceExhausted) {
        Fail("op-status", result_.ops_executed,
             "queue-full rejection carries the wrong code: " + status.ToString());
      }
    }
    return;
  }

  for (Result<DomId>& r : *outcomes) {
    if (!r.ok()) {
      log_ << " e" << static_cast<int>(r.status().code());
      continue;
    }
    DomId child = *r;
    if (std::find(live_.begin(), live_.end(), child) != live_.end()) {
      // Warm grant: the child never left the live set; its parked state was
      // already reset at release time.
      log_ << " w" << child;
    } else {
      const Domain* d = sys_->hypervisor().FindDomain(child);
      if (d == nullptr) {
        Fail("live-set", result_.ops_executed,
             "scheduler granted a dead domain " + std::to_string(child));
        return;
      }
      live_.push_back(child);
      model_.CloneChild(d->parent, child);
      log_ << " c" << child;
    }
    granted_.push_back(child);
  }
}

void Executor::OpSchedRelease(const Op& op) {
  DomId child = granted_[op.slot % granted_.size()];
  const bool can_reset = model_.CanReset(child);
  // Release finishes the child's own stream before parking; the reset inside
  // it also finishes any streams of the child's own lazy children.
  const std::size_t stream_pending =
      sys_->clone_engine().PendingStreamPages(child) + PendingChildStreamPages(child);
  auto outcome = sched_->Release(child);
  sys_->Settle();
  log_ << ' ' << static_cast<int>(outcome.status().code()) << " dom=" << child;
  if (!outcome.ok()) {
    // Legitimate refusals exist without faults: a child orphaned by its
    // parent's destruction is no longer a clone. Only a child the model says
    // is resettable must be accepted.
    if (can_reset && !faults_armed_) {
      Fail("op-status", result_.ops_executed,
           "sched release failed for a resettable clone: " + outcome.status().ToString());
    }
    return;
  }
  if (outcome->reset_applied) {
    Expect("clone/streamed_pages", stream_pending);
    const std::size_t predicted = model_.Reset(child);
    log_ << " restored=" << outcome->pages_restored << (outcome->parked ? " parked" : " evicted");
    if (outcome->pages_restored != predicted) {
      Fail("cells", result_.ops_executed,
           "sched release restored " + std::to_string(outcome->pages_restored) +
               " pages, model predicts " + std::to_string(predicted));
    }
    Expect("clone/reset/count", 1);
    Expect("clone/reset/pages_restored", predicted);
  } else if (can_reset && !faults_armed_) {
    Fail("op-status", result_.ops_executed,
         "sched release fell back to destroy for a resettable clone");
  }
  if (outcome->parked) {
    // Parked children leave the grant list; they come back via a warm hit.
    granted_.erase(std::remove(granted_.begin(), granted_.end(), child), granted_.end());
  }
  // Non-parked outcomes were destroyed through the evict hook, which already
  // scrubbed every list.
}

void Executor::OpArm(const Op& op) {
  Status status = sys_->fault_injector().Arm(op.point, op.spec);
  log_ << ' ' << static_cast<int>(status.code()) << ' ' << op.point;
  if (status.ok()) {
    faults_armed_ = true;
  }
}

void Executor::OpDevio(const Op& op) {
  DomId dom = Pick(op.dom);
  const std::uint32_t key = op.slot % 8;
  std::string value = EncodeDevioValue(op.value);
  const std::string path =
      XsDomainPath(dom) + "/data/dst/" + std::string(1, static_cast<char>('a' + key));
  Status status = sys_->xenstore().Write(path, value);
  sys_->Settle();
  log_ << ' ' << static_cast<int>(status.code()) << " dom=" << dom << " key=" << key;
  if (status.ok()) {
    model_.DeviceIo(dom, key, std::move(value));
  } else if (!faults_armed_) {
    Fail("op-status", result_.ops_executed,
         "xenstore data write failed without faults armed: " + status.ToString());
  }
}

void Executor::RunOracle(std::size_t op_index) {
  if (!result_.ok()) {
    return;
  }
  struct Check {
    const char* kind;
    std::string message;
  };
  Check checks[] = {
      {"live-set", CheckLiveSet()},   {"topology", CheckTopology()},
      {"cells", CheckCells()},        {"xenstore", CheckXenstore()},
      {"frames", CheckFrames()},      {"hv-state", CheckHvState()},
      {"counters", CheckCounters()},
  };
  for (Check& check : checks) {
    if (!check.message.empty()) {
      Fail(check.kind, op_index, std::move(check.message));
      return;
    }
  }
}

std::string Executor::CheckLiveSet() {
  std::vector<DomId> system_ids = sys_->hypervisor().DomainIds();
  std::size_t guests = 0;
  for (DomId id : system_ids) {
    if (id == kDom0) {
      continue;
    }
    ++guests;
    if (model_.Find(id) == nullptr) {
      return "domain " + std::to_string(id) + " alive in the hypervisor but not in the model";
    }
  }
  if (guests != model_.domains().size()) {
    return "hypervisor has " + std::to_string(guests) + " guests, model has " +
           std::to_string(model_.domains().size());
  }
  return "";
}

std::string Executor::CheckTopology() {
  for (const auto& [id, m] : model_.domains()) {
    const Domain* d = sys_->hypervisor().FindDomain(id);
    if (d == nullptr) {
      return "model domain " + std::to_string(id) + " missing from hypervisor";
    }
    if (d->parent != m.parent) {
      return "dom " + std::to_string(id) + " parent=" + std::to_string(d->parent) +
             ", model says " + std::to_string(m.parent);
    }
    if (d->track_dirty != m.is_clone) {
      return "dom " + std::to_string(id) + " track_dirty mismatch";
    }
    if (d->clones_created != m.clones_created) {
      return "dom " + std::to_string(id) + " clones_created=" +
             std::to_string(d->clones_created) + ", model says " +
             std::to_string(m.clones_created);
    }
    if (d->IsPaused() || d->blocked_in_clone) {
      return "dom " + std::to_string(id) + " still paused/blocked after settle";
    }
    if (d->tot_pages() != guest_pages_) {
      return "dom " + std::to_string(id) + " has " + std::to_string(d->tot_pages()) +
             " pages, expected " + std::to_string(guest_pages_);
    }
    for (std::size_t page = 0; page < ReferenceModel::kTrackedPages; ++page) {
      const P2mEntry& entry = d->p2m[heap0_ + page];
      if (entry.writable != m.writable[page]) {
        return "dom " + std::to_string(id) + " tracked page " + std::to_string(page) +
               " writable=" + (entry.writable ? "1" : "0") + ", model says " +
               (m.writable[page] ? "1" : "0");
      }
    }
  }
  return "";
}

std::string Executor::CheckCells() {
  for (const auto& [id, m] : model_.domains()) {
    for (std::uint32_t slot = 0; slot < ReferenceModel::kCells; ++slot) {
      std::uint8_t got = 0;
      Status status = sys_->hypervisor().ReadGuestPage(
          id, CellGfn(slot), ReferenceModel::SlotOffset(slot), &got, 1);
      if (!status.ok()) {
        return "cell read failed for dom " + std::to_string(id) + ": " + status.ToString();
      }
      if (got != m.cells[slot]) {
        return "COW isolation violated: dom " + std::to_string(id) + " slot " +
               std::to_string(slot) + " reads " + std::to_string(got) + ", model says " +
               std::to_string(m.cells[slot]);
      }
    }
  }
  return "";
}

std::string Executor::CheckXenstore() {
  const XenstoreDaemon& xs = sys_->xenstore();
  for (const auto& [id, m] : model_.domains()) {
    if (!xs.Exists(XsDomainPath(id))) {
      return "live dom " + std::to_string(id) + " has no xenstore subtree";
    }
    for (const auto& [key, value] : m.xs_data) {
      const std::string path =
          XsDomainPath(id) + "/data/dst/" + std::string(1, static_cast<char>('a' + key));
      const std::string* got = xs.PeekValue(path);
      if (got == nullptr) {
        return "xenstore mirror missing " + path;
      }
      if (*got != value) {
        return "xenstore mirror diverged at " + path + ": '" + *got + "' vs model '" + value +
               "'";
      }
    }
  }
  for (DomId id : dead_) {
    if (sys_->xenstore().Exists(XsDomainPath(id))) {
      return "destroyed dom " + std::to_string(id) + " still has a xenstore subtree";
    }
  }
  return "";
}

std::string Executor::CheckFrames() { return CheckFrameInvariants(sys_->hypervisor()); }

std::string Executor::CheckHvState() {
  std::string msg = CheckP2mInvariants(sys_->hypervisor());
  if (msg.empty()) {
    msg = CheckGrantInvariants(sys_->hypervisor());
  }
  if (msg.empty()) {
    msg = CheckEvtchnInvariants(sys_->hypervisor());
  }
  return msg;
}

std::string Executor::CheckCounters() {
  if (faults_armed_) {
    // Probability faults can fire inside any op while armed; comparisons
    // resume from a fresh baseline after the disarm op.
    ResyncCounters();
    return "";
  }
  for (const auto& [name, want] : expected_) {
    const std::uint64_t got = sys_->metrics().CounterValue(name);
    if (got != want) {
      return "counter " + name + " = " + std::to_string(got) + ", model expects " +
             std::to_string(want);
    }
  }
  return "";
}

}  // namespace

DomainConfig DstGuestConfig() {
  DomainConfig cfg;
  cfg.name = "dst";
  cfg.memory_mb = 4;
  cfg.max_clones = 512;
  cfg.with_vif = true;
  return cfg;
}

RunResult RunScenario(const Scenario& scenario, const RunOptions& options) {
  Executor executor(scenario, options);
  return executor.Run();
}

}  // namespace nephele
