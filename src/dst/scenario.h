// Deterministic simulation testing (DST): serializable scenarios.
//
// A Scenario is a seeded, typed op sequence — the complete input of one
// simulation run. Ops never name concrete DomIds: they address domains by
// creation-order index (modulo the live count at execution time), so a
// scenario stays meaningful while the shrinker deletes ops in front of it.
// The text encoding (one op per line, `key=value` operands) is what the
// corpus under tests/dst_corpus/ stores and what a failure report prints, so
// any oracle violation is replayable from a dozen lines of text.

#ifndef SRC_DST_SCENARIO_H_
#define SRC_DST_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/fault/fault.h"

namespace nephele {

enum class OpKind : std::uint8_t {
  kLaunchGuest = 0,  // xl create of a fresh root guest
  kCloneBatch,       // CLONEOP kClone: `n` children of domain `dom`
  kCowWrite,         // guest write to one tracked heap cell
  kCloneReset,       // CLONEOP kCloneReset of domain `dom`
  kDestroy,          // xl destroy of domain `dom`
  kMigrateOut,       // stop-and-copy emigration into stream slot
  kMigrateIn,        // immigration of stored stream `slot`
  kArmFault,         // arm a named fault point
  kDisarmFaults,     // disarm every fault point
  kDeviceIo,         // device control-plane I/O (xenstore data write)
  kAdvanceTime,      // advance virtual time by `amount` ns
  kSchedAcquire,     // CloneScheduler::Acquire: `n` children of domain `dom`
  kSchedRelease,     // CloneScheduler::Release of granted child `slot`
  kCloneLazy,        // CLONEOP kClone with lazy=true: post-copy children of
                     // `dom`; `slot` picks the tracked page hinted hot
  kTouchUnmapped,    // guest write aimed at a not-present (deferred) page of
                     // domain `dom` — the demand-fault path; falls back to
                     // the tracked cell `slot` when nothing is deferred
};

// The canonical op names of the text encoding, in OpKind order.
const char* OpKindName(OpKind kind);

struct Op {
  OpKind kind = OpKind::kLaunchGuest;
  // Domain index into the executor's creation-ordered live list (mod size).
  std::uint32_t dom = 0;
  // kCloneBatch: children per batch.
  std::uint32_t n = 1;
  // kCloneBatch: staging worker threads to configure first (0 = keep).
  std::uint32_t workers = 0;
  // kCowWrite: tracked cell index; kDeviceIo: data key; kMigrateIn: stream.
  std::uint32_t slot = 0;
  // kCowWrite: byte value; kDeviceIo: value tag.
  std::uint32_t value = 0;
  // kAdvanceTime: nanoseconds.
  std::uint64_t amount = 0;
  // kArmFault operands.
  std::string point;
  FaultSpec spec;

  bool operator==(const Op& other) const;
};

struct Scenario {
  // Provenance only: the generator seed this scenario was derived from.
  // Execution is deterministic regardless.
  std::uint64_t seed = 0;
  // Hypervisor pool size for the run.
  std::size_t pool_frames = 64 * 1024;
  std::vector<Op> ops;

  bool operator==(const Scenario& other) const {
    return seed == other.seed && pool_frames == other.pool_frames && ops == other.ops;
  }

  std::string ToText() const;
  // Strict parser: unknown op names, unknown keys or malformed values fail
  // loudly so corpus rot is caught, not silently skipped.
  static Result<Scenario> FromText(const std::string& text);
};

}  // namespace nephele

#endif  // SRC_DST_SCENARIO_H_
