// Automatic scenario minimisation (delta debugging), built on the generic
// DdminShrink engine in src/dst/ddmin.h (also used by the hvfuzz tape
// shrinker).
//
// Given a scenario whose run fails the oracle, ShrinkScenario searches for a
// local minimum that still fails with the SAME fail kind:
//
//   1. truncate — ops after the failing op are irrelevant by construction;
//   2. ddmin    — delete chunks of ops, halving the chunk size down to 1,
//                 restarting whenever a deletion sticks;
//   3. simplify — per-op operand reduction (batch size to 1, worker override
//                 off, values to 1), accepted only when the failure persists.
//
// Every candidate is re-executed with the caller's RunOptions, so seeded-bug
// hooks travel with the reruns. The result is 1-minimal: removing any single
// remaining op makes the failure disappear.

#ifndef SRC_DST_SHRINKER_H_
#define SRC_DST_SHRINKER_H_

#include <cstddef>

#include "src/dst/executor.h"
#include "src/dst/scenario.h"

namespace nephele {

struct ShrinkOutcome {
  Scenario scenario;   // the minimised failing scenario
  RunResult result;    // its failing run
  std::size_t runs = 0;  // executions spent shrinking
};

ShrinkOutcome ShrinkScenario(const Scenario& failing, const RunResult& failure,
                             const RunOptions& options = {});

}  // namespace nephele

#endif  // SRC_DST_SHRINKER_H_
