#include "src/dst/scenario.h"

#include <charconv>
#include <sstream>

namespace nephele {

namespace {

constexpr const char* kOpNames[] = {
    "launch",      "clone",  "write",  "reset", "destroy",       "migrate_out",
    "migrate_in",  "arm",    "disarm", "devio", "advance",       "sched_acquire",
    "sched_release", "clone_lazy", "touch_unmapped",
};

bool SpecEquals(const FaultSpec& a, const FaultSpec& b) {
  return a.policy == b.policy && a.nth == b.nth && a.probability == b.probability &&
         a.seed == b.seed && a.code == b.code;
}

Status ParseU64(std::string_view text, std::uint64_t& out) {
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return ErrInvalidArgument("bad integer: " + std::string(text));
  }
  return Status::Ok();
}

Status ParseDouble(std::string_view text, double& out) {
  // std::from_chars<double> is still spotty across libstdc++ versions in
  // minor modes; strtod on a bounded copy is equivalent here.
  std::string copy(text);
  char* end = nullptr;
  out = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) {
    return ErrInvalidArgument("bad float: " + copy);
  }
  return Status::Ok();
}

}  // namespace

const char* OpKindName(OpKind kind) { return kOpNames[static_cast<std::size_t>(kind)]; }

bool Op::operator==(const Op& other) const {
  return kind == other.kind && dom == other.dom && n == other.n && workers == other.workers &&
         slot == other.slot && value == other.value && amount == other.amount &&
         point == other.point && SpecEquals(spec, other.spec);
}

std::string Scenario::ToText() const {
  std::ostringstream out;
  out << "# nephele dst scenario v1\n";
  out << "seed " << seed << "\n";
  out << "pool_frames " << pool_frames << "\n";
  for (const Op& op : ops) {
    out << OpKindName(op.kind);
    switch (op.kind) {
      case OpKind::kLaunchGuest:
        break;
      case OpKind::kCloneBatch:
        out << " dom=" << op.dom << " n=" << op.n;
        if (op.workers != 0) {
          out << " workers=" << op.workers;
        }
        break;
      case OpKind::kCowWrite:
        out << " dom=" << op.dom << " slot=" << op.slot << " val=" << op.value;
        break;
      case OpKind::kCloneReset:
      case OpKind::kDestroy:
      case OpKind::kMigrateOut:
        out << " dom=" << op.dom;
        break;
      case OpKind::kMigrateIn:
        out << " stream=" << op.slot;
        break;
      case OpKind::kArmFault:
        out << " point=" << op.point;
        if (op.spec.policy == FaultSpec::Policy::kNthHit) {
          out << " nth=" << op.spec.nth;
        } else if (op.spec.policy == FaultSpec::Policy::kProbability) {
          out << " p=" << op.spec.probability << " pseed=" << op.spec.seed;
        }
        break;
      case OpKind::kDisarmFaults:
        break;
      case OpKind::kDeviceIo:
        out << " dom=" << op.dom << " key=" << op.slot << " val=" << op.value;
        break;
      case OpKind::kAdvanceTime:
        out << " ns=" << op.amount;
        break;
      case OpKind::kSchedAcquire:
        out << " dom=" << op.dom << " n=" << op.n;
        break;
      case OpKind::kSchedRelease:
        out << " slot=" << op.slot;
        break;
      case OpKind::kCloneLazy:
        out << " dom=" << op.dom << " n=" << op.n;
        if (op.workers != 0) {
          out << " workers=" << op.workers;
        }
        out << " slot=" << op.slot;
        break;
      case OpKind::kTouchUnmapped:
        out << " dom=" << op.dom << " slot=" << op.slot << " val=" << op.value;
        break;
    }
    out << "\n";
  }
  return out.str();
}

Result<Scenario> Scenario::FromText(const std::string& text) {
  Scenario scenario;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string head;
    fields >> head;
    auto fail = [&](std::string_view why) -> Result<Scenario> {
      return ErrInvalidArgument("scenario line " + std::to_string(line_no) + ": " +
                                std::string(why));
    };

    if (head == "seed" || head == "pool_frames") {
      std::string value;
      if (!(fields >> value)) {
        return fail("missing value for " + head);
      }
      std::uint64_t v = 0;
      NEPHELE_RETURN_IF_ERROR(ParseU64(value, v));
      if (head == "seed") {
        scenario.seed = v;
      } else {
        scenario.pool_frames = static_cast<std::size_t>(v);
      }
      continue;
    }

    Op op;
    bool known = false;
    for (std::size_t k = 0; k < std::size(kOpNames); ++k) {
      if (head == kOpNames[k]) {
        op.kind = static_cast<OpKind>(k);
        known = true;
        break;
      }
    }
    if (!known) {
      return fail("unknown op '" + head + "'");
    }

    // kArmFault defaults to an nth=1 spec so `arm point=x` alone is valid.
    double probability = -1.0;
    std::uint64_t nth = 0;
    std::uint64_t pseed = 0;

    std::string operand;
    while (fields >> operand) {
      std::size_t eq = operand.find('=');
      if (eq == std::string::npos) {
        return fail("operand without '=': " + operand);
      }
      std::string key = operand.substr(0, eq);
      std::string value = operand.substr(eq + 1);
      std::uint64_t v = 0;
      if (key == "point") {
        op.point = value;
        continue;
      }
      if (key == "p") {
        NEPHELE_RETURN_IF_ERROR(ParseDouble(value, probability));
        continue;
      }
      NEPHELE_RETURN_IF_ERROR(ParseU64(value, v));
      if (key == "dom") {
        op.dom = static_cast<std::uint32_t>(v);
      } else if (key == "n") {
        op.n = static_cast<std::uint32_t>(v);
      } else if (key == "workers") {
        op.workers = static_cast<std::uint32_t>(v);
      } else if (key == "slot" || key == "key" || key == "stream") {
        op.slot = static_cast<std::uint32_t>(v);
      } else if (key == "val") {
        op.value = static_cast<std::uint32_t>(v);
      } else if (key == "ns") {
        op.amount = v;
      } else if (key == "nth") {
        nth = v;
      } else if (key == "pseed") {
        pseed = v;
      } else {
        return fail("unknown key '" + key + "'");
      }
    }

    if (op.kind == OpKind::kArmFault) {
      if (op.point.empty()) {
        return fail("arm needs point=");
      }
      if (probability >= 0.0) {
        op.spec = FaultSpec::WithProbability(probability, pseed);
      } else {
        op.spec = FaultSpec::NthHit(nth == 0 ? 1 : nth);
      }
    }
    scenario.ops.push_back(std::move(op));
  }
  return scenario;
}

}  // namespace nephele
