#include "src/dst/reference_model.h"

#include <cassert>

namespace nephele {

ReferenceModel::DomainModel& ReferenceModel::At(DomId dom) {
  auto it = domains_.find(dom);
  assert(it != domains_.end());
  return it->second;
}

const ReferenceModel::DomainModel* ReferenceModel::Find(DomId dom) const {
  auto it = domains_.find(dom);
  return it == domains_.end() ? nullptr : &it->second;
}

void ReferenceModel::Launch(DomId dom) {
  DomainModel fresh;
  // A booted guest owns its heap pages privately: every tracked page starts
  // writable and zero-filled.
  fresh.writable.fill(true);
  domains_[dom] = std::move(fresh);
}

void ReferenceModel::CloneBatchPlanned(DomId parent, std::uint32_t n) {
  DomainModel& p = At(parent);
  // The first stage shares every non-private page of the parent, flipping
  // writable ptes read-only. This sticks even when children later abort in
  // the second stage (stage-2 unwind destroys the child; it does not
  // un-share the parent).
  p.writable.fill(false);
  p.clones_created += n;
}

void ReferenceModel::CloneChild(DomId parent, DomId child) {
  const DomainModel& p = At(parent);
  DomainModel c;
  c.parent = parent;
  c.is_clone = true;
  c.cells = p.cells;  // inherits the parent's view of every cell
  c.writable.fill(false);
  c.xs_data = p.xs_data;  // xs_clone copies the whole per-domain directory
  domains_[child] = std::move(c);
}

void ReferenceModel::Write(DomId dom, std::uint32_t slot, std::uint8_t value) {
  DomainModel& d = At(dom);
  slot %= kCells;
  std::size_t page = SlotPage(slot);
  if (!d.writable[page]) {
    // COW resolution: the pte flips writable and — for a clone — the page
    // lands on the dirty list (again, if it was re-shared by a later clone
    // or reset; CloneReset tolerates the duplicate).
    d.writable[page] = true;
    if (d.is_clone) {
      d.dirty.push_back(static_cast<std::uint8_t>(page));
    }
  }
  d.cells[slot] = value;
}

std::size_t ReferenceModel::Reset(DomId dom) {
  DomainModel& d = At(dom);
  DomainModel& p = At(d.parent);
  const std::size_t restored = d.dirty.size();
  for (std::uint8_t page : d.dirty) {
    // Re-share with the parent's *current* frame: the child takes over
    // whatever the parent's page holds now, and both ptes go read-only.
    for (std::size_t s = page * kSlotsPerPage; s < (page + 1u) * kSlotsPerPage; ++s) {
      d.cells[s] = p.cells[s];
    }
    d.writable[page] = false;
    p.writable[page] = false;
  }
  d.dirty.clear();
  return restored;
}

void ReferenceModel::Destroy(DomId dom) {
  DomainModel erased = std::move(At(dom));
  domains_.erase(dom);
  // The hypervisor re-parents orphans to the grandparent so ancestry queries
  // keep working for the rest of the family.
  for (auto& [id, d] : domains_) {
    if (d.parent == dom) {
      d.parent = erased.parent;
    }
  }
}

std::size_t ReferenceModel::MigrateOut(DomId dom) {
  StreamModel stream;
  stream.cells = At(dom).cells;
  streams_.push_back(stream);
  domains_.erase(dom);  // no family by precondition: nothing to re-parent
  return streams_.size() - 1;
}

void ReferenceModel::MigrateIn(std::size_t stream, DomId new_dom) {
  DomainModel fresh;
  fresh.cells = streams_[stream % streams_.size()].cells;
  // Immigration materialises private frames for everything it writes and
  // fresh writable pages for the rest; either way no sharing exists.
  fresh.writable.fill(true);
  domains_[new_dom] = std::move(fresh);
}

void ReferenceModel::DeviceIo(DomId dom, std::uint32_t key, std::string value) {
  At(dom).xs_data[key] = std::move(value);
}

bool ReferenceModel::CanReset(DomId dom) const {
  const DomainModel* d = Find(dom);
  // Mirrors clone_reset validation: the domain must have a live parent edge.
  return d != nullptr && d->parent != kDomInvalid && Find(d->parent) != nullptr;
}

bool ReferenceModel::CanMigrateOut(DomId dom) const {
  const DomainModel* d = Find(dom);
  if (d == nullptr || d->parent != kDomInvalid) {
    return false;
  }
  for (const auto& [id, other] : domains_) {
    if (other.parent == dom) {
      return false;
    }
  }
  return true;
}

bool ReferenceModel::CloneWouldValidate(DomId parent, std::uint32_t max_clones,
                                        std::uint32_t n) const {
  const DomainModel* d = Find(parent);
  return d != nullptr && n > 0 && d->clones_created + n <= max_clones;
}

}  // namespace nephele
