// DST scenario executor: runs one Scenario against a freshly constructed,
// fully-wired NepheleSystem while updating the ReferenceModel in lock step,
// and evaluates the whole oracle after every op:
//
//   live-set    hypervisor domain table == model domain set
//   topology    parent edges, clone accounting, pause state, p2m geometry,
//               per-page pte writability vs the model's COW mirror
//   cells       every tracked heap cell of every live domain reads exactly
//               the byte the model predicts (COW isolation)
//   xenstore    the /data mirror each domain carries (inherited on clone,
//               dropped on destroy) matches, via side-effect-free peeks
//   frames      frame conservation + refcount-vs-mapping consistency (the
//               tests/frame_invariants.h checks, gtest-free)
//   counters    expected deltas of the clone/reset/destroy counter set
//
// A run is deterministic: the same scenario produces a byte-identical digest
// at any worker-thread count, which the DST suite asserts directly.

#ifndef SRC_DST_EXECUTOR_H_
#define SRC_DST_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/dst/scenario.h"
#include "src/toolstack/domain_config.h"

namespace nephele {

class NepheleSystem;

// The fixed configuration every DST guest boots with. Exposed so tests can
// recompute the guest memory layout (e.g. to seed bugs at known cells).
DomainConfig DstGuestConfig();

struct RunOptions {
  // Non-zero: ignore per-op `workers` and stage every batch with this many
  // threads. The determinism suite runs each scenario at 1 and 4 and
  // compares digests.
  unsigned force_workers = 0;
  // Test-only hook, invoked after each op executes and the model is updated
  // but before the oracle runs. Lets tests seed a deliberate bug (mutate
  // system state behind the model's back) to prove the oracle catches it
  // and the shrinker minimises it.
  std::function<void(NepheleSystem&, const Op&, std::size_t op_index)> after_op;
};

struct RunResult {
  // Empty when the run passed; otherwise the failing check's category
  // ("live-set", "topology", "cells", "xenstore", "frames", "counters",
  // "op-status", "teardown").
  std::string fail_kind;
  std::size_t fail_op = static_cast<std::size_t>(-1);
  std::string message;

  // Deterministic run fingerprint: per-op outcome log plus hashes of the
  // final metrics JSON, trace JSON and the final virtual time.
  std::string digest;
  // Coverage edges for the generator's feedback loop.
  std::vector<std::uint32_t> edges;
  std::size_t ops_executed = 0;

  bool ok() const { return fail_kind.empty(); }
};

RunResult RunScenario(const Scenario& scenario, const RunOptions& options = {});

// 64-bit FNV-1a, the digest hash (exposed for tests).
std::uint64_t DstHash64(std::string_view data);

}  // namespace nephele

#endif  // SRC_DST_EXECUTOR_H_
