#include "src/dst/shrinker.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/dst/ddmin.h"

namespace nephele {

namespace {

std::vector<Op> SimplerVariants(const Op& op) {
  std::vector<Op> variants;
  auto push = [&](Op v) {
    if (!(v == op)) {
      variants.push_back(std::move(v));
    }
  };
  Op v = op;
  switch (op.kind) {
    case OpKind::kCloneBatch:
      v.n = 1;
      push(v);
      v = op;
      v.workers = 0;
      push(v);
      v = op;
      v.dom = 0;
      push(v);
      break;
    case OpKind::kCowWrite:
      v.value = 1;
      push(v);
      v = op;
      v.slot = 0;
      push(v);
      v = op;
      v.dom = 0;
      push(v);
      break;
    case OpKind::kCloneReset:
    case OpKind::kDestroy:
    case OpKind::kMigrateOut:
      v.dom = 0;
      push(v);
      break;
    case OpKind::kMigrateIn:
    case OpKind::kDeviceIo:
      v.slot = 0;
      push(v);
      v = op;
      v.value = std::min<std::uint32_t>(op.value, 1);
      push(v);
      break;
    case OpKind::kArmFault:
      if (op.spec.policy == FaultSpec::Policy::kNthHit && op.spec.nth > 1) {
        v.spec = FaultSpec::NthHit(1);
        push(v);
      }
      break;
    case OpKind::kAdvanceTime:
      v.amount = 1;
      push(v);
      break;
    case OpKind::kSchedAcquire:
      v.n = 1;
      push(v);
      v = op;
      v.dom = 0;
      push(v);
      break;
    case OpKind::kSchedRelease:
      v.slot = 0;
      push(v);
      break;
    case OpKind::kCloneLazy:
      v.n = 1;
      push(v);
      v = op;
      v.workers = 0;
      push(v);
      v = op;
      v.dom = 0;
      push(v);
      v = op;
      v.slot = 0;
      push(v);
      // The eager clone is the strictly simpler mechanism: if the failure
      // does not need post-copy streaming, drop it.
      v = op;
      v.kind = OpKind::kCloneBatch;
      v.slot = 0;
      push(v);
      break;
    case OpKind::kTouchUnmapped:
      v.slot = 0;
      push(v);
      v = op;
      v.value = 1;
      push(v);
      v = op;
      v.dom = 0;
      push(v);
      // A plain tracked-cell write is simpler than hunting for a deferred
      // page: keep it if the failure doesn't need the demand-fault path.
      v = op;
      v.kind = OpKind::kCowWrite;
      push(v);
      break;
    case OpKind::kLaunchGuest:
    case OpKind::kDisarmFaults:
      break;
  }
  return variants;
}

}  // namespace

ShrinkOutcome ShrinkScenario(const Scenario& failing, const RunResult& failure,
                             const RunOptions& options) {
  // Every candidate is re-executed with the caller's RunOptions, so
  // seeded-bug hooks travel with the reruns.
  Scenario shell = failing;  // carries seed/pool_frames for every candidate
  const std::string want_kind = failure.fail_kind;
  auto outcome = DdminShrink<Op, RunResult>(
      failing.ops, failure, failure.fail_op,
      [&](const std::vector<Op>& ops) {
        shell.ops = ops;
        return RunScenario(shell, options);
      },
      [&](const RunResult& r) { return !r.ok() && r.fail_kind == want_kind; },
      &SimplerVariants);
  shell.ops = std::move(outcome.ops);
  return ShrinkOutcome{std::move(shell), std::move(outcome.result), outcome.runs};
}

}  // namespace nephele
