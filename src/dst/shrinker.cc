#include "src/dst/shrinker.h"

#include <algorithm>

namespace nephele {

namespace {

class Shrinker {
 public:
  Shrinker(const Scenario& failing, const RunResult& failure, const RunOptions& options)
      : options_(options), best_(failing), best_result_(failure) {}

  ShrinkOutcome Run() {
    Truncate();
    while (DeletionPass() || SimplifyPass()) {
      // Either pass shrinking re-opens opportunities for the other; iterate
      // to a combined fixpoint.
    }
    return ShrinkOutcome{std::move(best_), std::move(best_result_), runs_};
  }

 private:
  // A candidate is accepted when it still fails the same oracle check.
  bool StillFails(const Scenario& candidate) {
    ++runs_;
    RunResult r = RunScenario(candidate, options_);
    if (!r.ok() && r.fail_kind == best_result_.fail_kind) {
      best_ = candidate;
      best_result_ = std::move(r);
      return true;
    }
    return false;
  }

  void Truncate() {
    if (best_result_.fail_op + 1 < best_.ops.size()) {
      Scenario candidate = best_;
      candidate.ops.resize(best_result_.fail_op + 1);
      (void)StillFails(candidate);
    }
  }

  // ddmin: chunked deletion with halving granularity. Returns true when any
  // deletion stuck.
  bool DeletionPass() {
    bool shrunk = false;
    std::size_t chunk = std::max<std::size_t>(best_.ops.size() / 2, 1);
    while (chunk >= 1) {
      bool progress = false;
      for (std::size_t start = 0; start < best_.ops.size();) {
        Scenario candidate = best_;
        const std::size_t end = std::min(start + chunk, candidate.ops.size());
        candidate.ops.erase(candidate.ops.begin() + static_cast<std::ptrdiff_t>(start),
                            candidate.ops.begin() + static_cast<std::ptrdiff_t>(end));
        if (!candidate.ops.empty() && StillFails(candidate)) {
          progress = true;
          shrunk = true;
          // best_ changed; retry the same start against the shorter list.
        } else {
          start += chunk;
        }
      }
      if (chunk == 1 && !progress) {
        break;
      }
      if (!progress) {
        chunk /= 2;
      }
    }
    return shrunk;
  }

  // Operand reduction: each accepted simplification makes the reproducer
  // easier to read and often unlocks further deletions.
  bool SimplifyPass() {
    bool shrunk = false;
    for (std::size_t i = 0; i < best_.ops.size(); ++i) {
      for (const Op& simpler : SimplerVariants(best_.ops[i])) {
        Scenario candidate = best_;
        candidate.ops[i] = simpler;
        if (StillFails(candidate)) {
          shrunk = true;
          break;  // re-derive variants from the new op on the next pass
        }
      }
    }
    return shrunk;
  }

  static std::vector<Op> SimplerVariants(const Op& op) {
    std::vector<Op> variants;
    auto push = [&](Op v) {
      if (!(v == op)) {
        variants.push_back(std::move(v));
      }
    };
    Op v = op;
    switch (op.kind) {
      case OpKind::kCloneBatch:
        v.n = 1;
        push(v);
        v = op;
        v.workers = 0;
        push(v);
        v = op;
        v.dom = 0;
        push(v);
        break;
      case OpKind::kCowWrite:
        v.value = 1;
        push(v);
        v = op;
        v.slot = 0;
        push(v);
        v = op;
        v.dom = 0;
        push(v);
        break;
      case OpKind::kCloneReset:
      case OpKind::kDestroy:
      case OpKind::kMigrateOut:
        v.dom = 0;
        push(v);
        break;
      case OpKind::kMigrateIn:
      case OpKind::kDeviceIo:
        v.slot = 0;
        push(v);
        v = op;
        v.value = std::min<std::uint32_t>(op.value, 1);
        push(v);
        break;
      case OpKind::kArmFault:
        if (op.spec.policy == FaultSpec::Policy::kNthHit && op.spec.nth > 1) {
          v.spec = FaultSpec::NthHit(1);
          push(v);
        }
        break;
      case OpKind::kAdvanceTime:
        v.amount = 1;
        push(v);
        break;
      case OpKind::kSchedAcquire:
        v.n = 1;
        push(v);
        v = op;
        v.dom = 0;
        push(v);
        break;
      case OpKind::kSchedRelease:
        v.slot = 0;
        push(v);
        break;
      case OpKind::kLaunchGuest:
      case OpKind::kDisarmFaults:
        break;
    }
    return variants;
  }

  const RunOptions& options_;
  Scenario best_;
  RunResult best_result_;
  std::size_t runs_ = 0;
};

}  // namespace

ShrinkOutcome ShrinkScenario(const Scenario& failing, const RunResult& failure,
                             const RunOptions& options) {
  Shrinker shrinker(failing, failure, options);
  return shrinker.Run();
}

}  // namespace nephele
