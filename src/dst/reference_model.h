// The DST oracle's reference model: a trivially-correct mirror of what the
// full NepheleSystem is supposed to do, updated in lock step with each
// executed op.
//
// The model is deliberately dumb — plain maps and arrays, no sharing, no
// frames, no COW machinery. Per domain it keeps:
//   * the byte value of every tracked heap cell (kCells cells spread over
//     kTrackedPages pages), the COW-isolation ground truth;
//   * a per-page writable bit mirroring the pte state the COW protocol
//     maintains (shared after clone/reset => read-only, first write flips it
//     back), which also reproduces the kernel's dirty-list append rule;
//   * the dirty-page list a clone accumulates, predicting CloneReset's
//     restored-page count bit-exactly (duplicates included);
//   * the family edge (parent), replicating destroy-time re-parenting;
//   * the xenstore mirror of the domain's /data subtree, which xs_clone
//     copies to children and destroy removes.
//
// Everything is value-typed and deterministic, so model state is a pure
// function of the applied op sequence.

#ifndef SRC_DST_REFERENCE_MODEL_H_
#define SRC_DST_REFERENCE_MODEL_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/hypervisor/types.h"

namespace nephele {

class ReferenceModel {
 public:
  // Tracked heap cells: kSlotsPerPage cells per page, 64 bytes apart.
  static constexpr std::size_t kCells = 24;
  static constexpr std::size_t kSlotsPerPage = 4;
  static constexpr std::size_t kTrackedPages = kCells / kSlotsPerPage;

  struct DomainModel {
    DomId parent = kDomInvalid;
    bool is_clone = false;  // mirrors Domain::track_dirty
    std::uint32_t clones_created = 0;
    std::array<std::uint8_t, kCells> cells{};
    std::array<bool, kTrackedPages> writable{};
    // Tracked pages dirtied since clone/reset, in append order. Mirrors the
    // hypervisor's dirty_since_clone restricted to the tracked range —
    // including the duplicate a re-shared-then-rewritten page produces.
    std::vector<std::uint8_t> dirty;
    // Mirror of /local/domain/<id>/data/dst/<key>.
    std::map<std::uint32_t, std::string> xs_data;
  };

  struct StreamModel {
    std::array<std::uint8_t, kCells> cells{};
  };

  // --- Transitions (executor calls these only for ops the system accepted). ---
  void Launch(DomId dom);
  // First-stage success of a whole batch: parent-side pte flips and clone
  // accounting. Applies even when children later abort in stage 2.
  void CloneBatchPlanned(DomId parent, std::uint32_t n);
  // One successfully second-staged child; aborted children are never added.
  void CloneChild(DomId parent, DomId child);
  void Write(DomId dom, std::uint32_t slot, std::uint8_t value);
  // Returns the predicted restored-page count.
  std::size_t Reset(DomId dom);
  void Destroy(DomId dom);
  // Returns the stream slot the domain was saved into.
  std::size_t MigrateOut(DomId dom);
  void MigrateIn(std::size_t stream, DomId new_dom);
  void DeviceIo(DomId dom, std::uint32_t key, std::string value);

  // --- Predictions the executor checks before trusting a system status. ---
  bool CanReset(DomId dom) const;
  bool CanMigrateOut(DomId dom) const;
  // Clone admission control (cloning enabled + max_clones headroom).
  bool CloneWouldValidate(DomId parent, std::uint32_t max_clones, std::uint32_t n) const;

  const std::map<DomId, DomainModel>& domains() const { return domains_; }
  const DomainModel* Find(DomId dom) const;
  std::size_t num_streams() const { return streams_.size(); }
  const StreamModel& stream(std::size_t i) const { return streams_[i]; }

  static std::size_t SlotPage(std::uint32_t slot) { return slot % kCells / kSlotsPerPage; }
  static std::size_t SlotOffset(std::uint32_t slot) { return slot % kCells % kSlotsPerPage * 64; }

 private:
  DomainModel& At(DomId dom);

  std::map<DomId, DomainModel> domains_;
  std::vector<StreamModel> streams_;
};

}  // namespace nephele

#endif  // SRC_DST_REFERENCE_MODEL_H_
