// Hypervisor state invariants: the single reusable oracle consulted by the
// DST executor, the hostile-guest fuzz harness (src/hvfuzz) and the gtest
// suites (tests/frame_invariants.h). Each check walks live hypervisor state
// and returns "" when the invariant holds, else a human-readable violation.
//
//   frames   free + allocated == total; every allocated frame is referenced
//            by exactly the mappings the frame table thinks it has (shared
//            refcount == number of p2m references, unshared frames mapped
//            exactly once); no freed frame is still mapped.
//   p2m      every mapped gfn names an allocated in-range frame owned by the
//            domain itself (private) or by dom_cow (shared); a writable pte
//            over a shared frame is only legal for IDC regions; the special
//            gfns (start_info, console, xenstore ring) stay inside the p2m.
//   grants   granter-side entries and mapper-side records agree exactly:
//            map_count == recorded mappers, every mapper is a live domain
//            holding the matching record, and every granted gfn is inside
//            the granter's p2m.
//   evtchns  no dangling connections: every kInterdomain entry names a live
//            remote domain whose remote_port entry is itself connected; a
//            pending bit only ever sits on a connected or VIRQ port.
//
// The checks are gtest-free and side-effect-free so they can run after every
// fuzz op as the bug signal, not just in unit tests.

#ifndef SRC_HYPERVISOR_INVARIANTS_H_
#define SRC_HYPERVISOR_INVARIANTS_H_

#include <string>

#include "src/hypervisor/hypervisor.h"

namespace nephele {

std::string CheckFrameInvariants(const Hypervisor& hv);
std::string CheckP2mInvariants(const Hypervisor& hv);
std::string CheckGrantInvariants(const Hypervisor& hv);
std::string CheckEvtchnInvariants(const Hypervisor& hv);

// All of the above in order; the first violation wins.
std::string CheckHypervisorInvariants(const Hypervisor& hv);

}  // namespace nephele

#endif  // SRC_HYPERVISOR_INVARIANTS_H_
