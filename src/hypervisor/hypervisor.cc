#include "src/hypervisor/hypervisor.h"

#include <algorithm>
#include <cassert>

#include "src/base/log.h"
#include "src/base/units.h"

namespace nephele {

Hypervisor::Hypervisor(EventLoop& loop, const CostModel& costs, HypervisorConfig config,
                       MetricsRegistry* metrics, FaultInjector* faults)
    : loop_(loop),
      costs_(costs),
      config_(config),
      frames_(config.pool_frames),
      own_metrics_(metrics == nullptr ? std::make_unique<MetricsRegistry>() : nullptr),
      metrics_(metrics != nullptr ? metrics : own_metrics_.get()),
      m_hypercalls_(metrics_->GetCounter("hypervisor/hypercalls")),
      m_cow_faults_(metrics_->GetCounter("hypervisor/cow/faults")),
      m_cow_pages_copied_(metrics_->GetCounter("hypervisor/cow/pages_copied")),
      m_grant_accesses_(metrics_->GetCounter("hypervisor/grant/accesses")),
      m_grant_end_accesses_(metrics_->GetCounter("hypervisor/grant/end_accesses")),
      m_grant_maps_(metrics_->GetCounter("hypervisor/grant/maps")),
      m_grant_unmaps_(metrics_->GetCounter("hypervisor/grant/unmaps")),
      m_domains_created_(metrics_->GetCounter("hypervisor/domains/created")),
      m_domains_destroyed_(metrics_->GetCounter("hypervisor/domains/destroyed")) {
  if (faults != nullptr) {
    f_frame_alloc_ = faults->GetPoint("hypervisor/frame_alloc");
    f_cow_resolve_ = faults->GetPoint("hypervisor/cow_resolve");
    f_grant_access_ = faults->GetPoint("hypervisor/grant_access");
    f_evtchn_alloc_ = faults->GetPoint("hypervisor/evtchn_alloc");
  }
  // Pool occupancy gauges sample the frame table live at export time, so no
  // hot-path updates are needed anywhere in the allocator.
  metrics_->GetGauge("hypervisor/frames/free").SetProvider([this] {
    return static_cast<std::int64_t>(frames_.free_frames());
  });
  metrics_->GetGauge("hypervisor/frames/allocated").SetProvider([this] {
    return static_cast<std::int64_t>(frames_.allocated_frames());
  });
  metrics_->GetGauge("hypervisor/frames/shared").SetProvider([this] {
    return static_cast<std::int64_t>(frames_.shared_frames());
  });
  metrics_->GetGauge("hypervisor/frames/saved_by_sharing").SetProvider([this] {
    return static_cast<std::int64_t>(frames_.frames_saved_by_sharing());
  });
  metrics_->GetGauge("hypervisor/domains/live").SetProvider([this] {
    return static_cast<std::int64_t>(domains_.size());
  });
  // Dom0 exists from boot; its memory lives outside the guest pool (the
  // 4 GiB / 12 GiB machine split of Sec. 6.2 is modelled in src/toolstack).
  auto dom0 = std::make_unique<Domain>();
  dom0->id = kDom0;
  dom0->name = "Domain-0";
  dom0->state = DomainState::kRunning;
  dom0->vcpus.resize(1);
  dom0->family_root = kDom0;
  dom0->grants = GrantTable(config_.grant_entries_per_domain);
  dom0->evtchns = EvtchnTable(config_.evtchn_ports_per_domain);
  domains_[kDom0] = std::move(dom0);
}

Result<DomId> Hypervisor::CreateDomain(const std::string& name, int vcpus) {
  if (vcpus <= 0) {
    return ErrInvalidArgument("vcpus must be positive");
  }
  DomId id = next_domid_++;
  auto d = std::make_unique<Domain>();
  d->id = id;
  d->name = name;
  d->state = DomainState::kCreated;
  d->vcpus.resize(static_cast<std::size_t>(vcpus));
  d->family_root = id;
  d->grants = GrantTable(config_.grant_entries_per_domain);
  d->evtchns = EvtchnTable(config_.evtchn_ports_per_domain);
  domains_[id] = std::move(d);
  m_domains_created_.Increment();
  return id;
}

void Hypervisor::ReleaseDomainFrames(Domain& d) {
  for (auto& entry : d.p2m) {
    if (entry.mfn != kInvalidMfn) {
      (void)frames_.Release(entry.mfn);
      loop_.AdvanceBy(costs_.frame_free);
      entry.mfn = kInvalidMfn;
    }
  }
  for (Mfn mfn : d.page_table_frames) {
    (void)frames_.Release(mfn);
    loop_.AdvanceBy(costs_.frame_free);
  }
  d.page_table_frames.clear();
  for (Mfn mfn : d.p2m_frames) {
    (void)frames_.Release(mfn);
    loop_.AdvanceBy(costs_.frame_free);
  }
  d.p2m_frames.clear();
  d.p2m.clear();
  d.lazy_deferred_pages = 0;
}

void Hypervisor::ScrubGrantMappings(Domain& d) {
  // Force-revoke the mappings the dying domain holds into other tables (the
  // granter's map_count must not stay pinned by a dead mapper) ...
  for (const auto& [granter_id, ref] : d.grant_maps) {
    if (Domain* g = FindDomain(granter_id); g != nullptr) {
      (void)g->grants.Unmap(ref, d.id);
    }
  }
  d.grant_maps.clear();
  // ... and the mappings others hold into the dying domain's table (their
  // mapper-side records would otherwise dangle).
  for (GrantRef ref = 0; ref < d.grants.max_entries(); ++ref) {
    GrantEntry& e = d.grants.mutable_entry(ref);
    if (!e.in_use) {
      continue;
    }
    for (DomId mapper_id : e.mappers) {
      if (Domain* m = FindDomain(mapper_id); m != nullptr) {
        auto it = std::find(m->grant_maps.begin(), m->grant_maps.end(),
                            std::make_pair(d.id, ref));
        if (it != m->grant_maps.end()) {
          m->grant_maps.erase(it);
        }
      }
    }
    e.mappers.clear();
    e.map_count = 0;
  }
}

void Hypervisor::ScrubEvtchnPeers(DomId dom) {
  // Reset every connected channel still pointing at `dom` back to kUnbound
  // (Xen's __evtchn_close semantics: the surviving end keeps its reservation
  // but is no longer connected). This covers back-pointered peers as well as
  // the fan-in entries IDC rebinding and table cloning create, which carry no
  // back-pointer by design.
  std::vector<std::pair<DomId, EvtchnPort>> scrubbed;
  for (auto& [id, other] : domains_) {
    if (id == dom) {
      continue;
    }
    EvtchnTable& t = other->evtchns;
    for (EvtchnPort p = 1; p < t.used_port_limit(); ++p) {
      EvtchnEntry& e = t.mutable_entry(p);
      if (e.state == EvtchnState::kInterdomain && e.remote_dom == dom) {
        e.state = EvtchnState::kUnbound;
        e.remote_port = kInvalidPort;
        e.pending = false;
        scrubbed.emplace_back(id, p);
      }
    }
  }
  // A scrubbed entry may have been an IDC fan-in hub; disconnect the
  // siblings that were bound to it too.
  CascadeEvtchnUnbind(std::move(scrubbed));
}

void Hypervisor::CascadeEvtchnUnbind(
    std::vector<std::pair<DomId, EvtchnPort>> work) {
  // Each sweep transitions an entry out of kInterdomain exactly once, so the
  // worklist terminates even on cyclic connection graphs.
  while (!work.empty()) {
    auto [wd, wp] = work.back();
    work.pop_back();
    for (auto& [id, other] : domains_) {
      EvtchnTable& t = other->evtchns;
      for (EvtchnPort p = 1; p < t.used_port_limit(); ++p) {
        EvtchnEntry& e = t.mutable_entry(p);
        if (e.state == EvtchnState::kInterdomain && e.remote_dom == wd &&
            e.remote_port == wp) {
          e.state = EvtchnState::kUnbound;
          e.remote_port = kInvalidPort;
          e.pending = false;
          work.emplace_back(id, p);
        }
      }
    }
  }
}

Status Hypervisor::DestroyDomain(DomId dom) {
  auto it = domains_.find(dom);
  if (it == domains_.end()) {
    return ErrNotFound("no such domain");
  }
  if (dom == kDom0) {
    return ErrPermissionDenied("cannot destroy Dom0");
  }
  Domain& d = *it->second;
  // Lazy-clone bookkeeping first: children still streaming from `d` must
  // snapshot their remaining pages before the source frames are released,
  // and a stream targeting `d` itself must be cancelled.
  if (domain_destroy_hook_) {
    domain_destroy_hook_(dom);
  }
  d.state = DomainState::kDying;
  ReleaseDomainFrames(d);
  ScrubGrantMappings(d);
  ScrubEvtchnPeers(dom);
  // Unlink from the family tree but keep ancestry queries working for
  // remaining members: children are re-parented to the grandparent.
  if (d.parent != kDomInvalid) {
    if (Domain* p = FindDomain(d.parent); p != nullptr) {
      std::erase(p->children, dom);
      for (DomId c : d.children) {
        if (Domain* cd = FindDomain(c); cd != nullptr) {
          cd->parent = d.parent;
          p->children.push_back(c);
        }
      }
    }
  } else {
    for (DomId c : d.children) {
      if (Domain* cd = FindDomain(c); cd != nullptr) {
        cd->parent = kDomInvalid;
      }
    }
  }
  evtchn_handlers_.erase(dom);
  domains_.erase(it);
  m_domains_destroyed_.Increment();
  return Status::Ok();
}

Status Hypervisor::PauseDomain(DomId dom) {
  Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  d->state = DomainState::kPaused;
  return Status::Ok();
}

Status Hypervisor::UnpauseDomain(DomId dom) {
  Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  d->state = DomainState::kRunning;
  // Deliver upcalls for events that fired while the domain was paused (the
  // pending bits survive the pause, as on real Xen).
  for (EvtchnPort port = 1; port < d->evtchns.max_ports(); ++port) {
    if (d->evtchns.ValidPort(port) && d->evtchns.entry(port).pending) {
      loop_.Post(SimDuration::Micros(2), [this, dom, port] {
        Domain* rd = FindDomain(dom);
        if (rd == nullptr || rd->IsPaused() || !rd->evtchns.ValidPort(port) ||
            !rd->evtchns.entry(port).pending) {
          return;
        }
        auto it = evtchn_handlers_.find(dom);
        if (it != evtchn_handlers_.end()) {
          rd->evtchns.mutable_entry(port).pending = false;
          it->second(port);
        }
      });
    }
  }
  return Status::Ok();
}

Status Hypervisor::SetDomainName(DomId dom, const std::string& name) {
  Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  d->name = name;
  return Status::Ok();
}

Status Hypervisor::SetCloneConfig(DomId dom, bool enabled, std::uint32_t max_clones) {
  Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  d->cloning_enabled = enabled;
  d->max_clones = max_clones;
  return Status::Ok();
}

Domain* Hypervisor::FindDomain(DomId dom) {
  auto it = domains_.find(dom);
  return it == domains_.end() ? nullptr : it->second.get();
}

const Domain* Hypervisor::FindDomain(DomId dom) const {
  auto it = domains_.find(dom);
  return it == domains_.end() ? nullptr : it->second.get();
}

std::vector<DomId> Hypervisor::DomainIds() const {
  std::vector<DomId> ids;
  ids.reserve(domains_.size());
  for (const auto& [id, d] : domains_) {
    ids.push_back(id);
  }
  return ids;
}

Result<Mfn> Hypervisor::AllocFrameFor(DomId dom) {
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_frame_alloc_));
  auto mfn = frames_.Alloc(dom);
  if (mfn.ok()) {
    loop_.AdvanceBy(costs_.frame_alloc);
  }
  return mfn;
}

Result<Gfn> Hypervisor::PopulatePhysmap(DomId dom, std::size_t pages, PageRole role) {
  Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  Gfn first = static_cast<Gfn>(d->p2m.size());
  for (std::size_t i = 0; i < pages; ++i) {
    auto mfn = AllocFrameFor(dom);
    if (!mfn.ok()) {
      // Roll back partial allocation so accounting stays exact.
      for (std::size_t j = 0; j < i; ++j) {
        (void)frames_.Release(d->p2m.back().mfn);
        d->p2m.pop_back();
      }
      return mfn.status();
    }
    d->p2m.push_back(P2mEntry{*mfn, role, /*writable=*/role != PageRole::kImageText});
  }
  return first;
}

Result<Gfn> Hypervisor::AllocSpecialPage(DomId dom, PageRole role) {
  NEPHELE_ASSIGN_OR_RETURN(Gfn gfn, PopulatePhysmap(dom, 1, role));
  Domain* d = FindDomain(dom);
  switch (role) {
    case PageRole::kStartInfo:
      d->start_info_gfn = gfn;
      break;
    case PageRole::kConsoleRing:
      d->console_ring_gfn = gfn;
      break;
    case PageRole::kXenstoreRing:
      d->xenstore_ring_gfn = gfn;
      break;
    default:
      break;
  }
  return gfn;
}

Status Hypervisor::BuildPageTables(DomId dom) {
  Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  // Release any previous tables (rebuild path for restore/clone).
  for (Mfn mfn : d->page_table_frames) {
    (void)frames_.Release(mfn);
  }
  d->page_table_frames.clear();
  std::size_t pt_pages = PageTablePagesFor(d->p2m.size());
  for (std::size_t i = 0; i < pt_pages; ++i) {
    NEPHELE_ASSIGN_OR_RETURN(Mfn mfn, AllocFrameFor(dom));
    d->page_table_frames.push_back(mfn);
    loop_.AdvanceBy(costs_.private_page_rewrite);
  }
  // p2m map storage: one 4-byte entry per page -> 1 frame per 1024 pages.
  for (Mfn mfn : d->p2m_frames) {
    (void)frames_.Release(mfn);
  }
  d->p2m_frames.clear();
  std::size_t p2m_pages = (d->p2m.size() * 4 + kPageSize - 1) / kPageSize;
  if (p2m_pages == 0) {
    p2m_pages = 1;
  }
  for (std::size_t i = 0; i < p2m_pages; ++i) {
    NEPHELE_ASSIGN_OR_RETURN(Mfn mfn, AllocFrameFor(dom));
    d->p2m_frames.push_back(mfn);
  }
  return Status::Ok();
}

Status Hypervisor::ResolveCowForWrite(Domain& d, Gfn gfn) {
  P2mEntry& entry = d.p2m[gfn];
  if (entry.writable) {
    return Status::Ok();
  }
  if (entry.role == PageRole::kImageText) {
    return ErrPermissionDenied("write to read-only text page");
  }
  // Lazy-clone interlock: materialise this domain's own not-present entry
  // (demand fault) and push the page to lazy children still deferring it,
  // so the COW resolution below never mutates an unsnapshotted frame.
  if (lazy_touch_hook_) {
    NEPHELE_RETURN_IF_ERROR(lazy_touch_hook_(d.id, gfn));
  }
  if (entry.mfn == kInvalidMfn) {
    return ErrFailedPrecondition("write to not-present page with no lazy engine");
  }
  // COW fault (Sec. 4.1 / 5.2).
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_cow_resolve_));
  loop_.AdvanceBy(costs_.cow_fault_fixed);
  NEPHELE_ASSIGN_OR_RETURN(auto res, frames_.ResolveCowWrite(entry.mfn, d.id));
  if (res.copied) {
    loop_.AdvanceBy(costs_.page_copy + costs_.frame_alloc);
    ++d.cow_pages_copied;
  }
  entry.mfn = res.mfn;
  entry.writable = true;
  ++d.cow_faults;
  ++total_cow_faults_;
  m_cow_faults_.Increment();
  if (res.copied) {
    m_cow_pages_copied_.Increment();
  }
  if (d.track_dirty) {
    d.dirty_since_clone.push_back(gfn);
  }
  if (cow_fault_hook_) {
    cow_fault_hook_(d.id, gfn, res.copied);
  }
  return Status::Ok();
}

Status Hypervisor::ForceCowResolve(DomId dom, Gfn gfn) {
  Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  if (gfn >= d->p2m.size()) {
    return ErrOutOfRange("gfn outside p2m");
  }
  // Unlike a guest write fault, this privileged path may un-share read-only
  // text pages too: KFX needs clone-private text for breakpoint insertion
  // (Sec. 7.2).
  P2mEntry& entry = d->p2m[gfn];
  if (entry.writable) {
    return Status::Ok();
  }
  // Same lazy-clone interlock as the guest write-fault path.
  if (lazy_touch_hook_) {
    NEPHELE_RETURN_IF_ERROR(lazy_touch_hook_(dom, gfn));
  }
  if (entry.mfn == kInvalidMfn) {
    return ErrFailedPrecondition("cow resolve of not-present page with no lazy engine");
  }
  if (!frames_.IsShared(entry.mfn)) {
    entry.writable = true;
    return Status::Ok();
  }
  loop_.AdvanceBy(costs_.cow_fault_fixed);
  NEPHELE_ASSIGN_OR_RETURN(auto res, frames_.ResolveCowWrite(entry.mfn, d->id));
  if (res.copied) {
    loop_.AdvanceBy(costs_.page_copy + costs_.frame_alloc);
    ++d->cow_pages_copied;
  }
  entry.mfn = res.mfn;
  entry.writable = true;
  ++d->cow_faults;
  ++total_cow_faults_;
  m_cow_faults_.Increment();
  if (res.copied) {
    m_cow_pages_copied_.Increment();
  }
  if (d->track_dirty) {
    d->dirty_since_clone.push_back(gfn);
  }
  if (cow_fault_hook_) {
    cow_fault_hook_(d->id, gfn, res.copied);
  }
  return Status::Ok();
}

Status Hypervisor::WriteGuestPage(DomId dom, Gfn gfn, std::size_t offset, const void* src,
                                  std::size_t len) {
  Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  // Checked as two comparisons: `offset + len` may wrap for hostile inputs.
  if (gfn >= d->p2m.size() || offset >= kPageSize || len > kPageSize - offset) {
    return ErrOutOfRange("guest write outside page");
  }
  NEPHELE_RETURN_IF_ERROR(ResolveCowForWrite(*d, gfn));
  if (d->log_dirty) {
    d->dirty_log.insert(gfn);
  }
  frames_.WriteBytes(d->p2m[gfn].mfn, offset, static_cast<const std::uint8_t*>(src), len);
  return Status::Ok();
}

Status Hypervisor::ReadGuestPage(DomId dom, Gfn gfn, std::size_t offset, void* out,
                                 std::size_t len) const {
  const Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  // Checked as two comparisons: `offset + len` may wrap for hostile inputs.
  if (gfn >= d->p2m.size() || offset >= kPageSize || len > kPageSize - offset) {
    return ErrOutOfRange("guest read outside page");
  }
  Mfn mfn = d->p2m[gfn].mfn;
  if (mfn == kInvalidMfn) {
    // Deferred (lazy-clone) page: reads are served straight from the
    // parent's frame — the simulator's analogue of a read-only mapping of
    // the stream source. Side-effect-free, so oracles may read every page
    // of a partially-mapped child without perturbing the stream.
    const Domain* p = FindDomain(d->parent);
    if (p == nullptr || gfn >= p->p2m.size() || p->p2m[gfn].mfn == kInvalidMfn) {
      return ErrFailedPrecondition("read of not-present page with no stream source");
    }
    mfn = p->p2m[gfn].mfn;
  }
  frames_.ReadBytes(mfn, offset, static_cast<std::uint8_t*>(out), len);
  return Status::Ok();
}

Status Hypervisor::TouchGuestPages(DomId dom, Gfn gfn, std::size_t count) {
  Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  // Checked as two comparisons: `gfn + count` may wrap for hostile inputs.
  if (gfn > d->p2m.size() || count > d->p2m.size() - gfn) {
    return ErrOutOfRange("touch outside p2m");
  }
  for (std::size_t i = 0; i < count; ++i) {
    NEPHELE_RETURN_IF_ERROR(ResolveCowForWrite(*d, gfn + static_cast<Gfn>(i)));
    if (d->log_dirty) {
      d->dirty_log.insert(gfn + static_cast<Gfn>(i));
    }
    loop_.AdvanceBy(costs_.guest_touch_page);
  }
  return Status::Ok();
}

Status Hypervisor::SetDirtyLogging(DomId dom, bool enabled) {
  Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  d->log_dirty = enabled;
  if (!enabled) {
    d->dirty_log.clear();
  }
  return Status::Ok();
}

Result<std::vector<Gfn>> Hypervisor::FetchAndResetDirtyLog(DomId dom) {
  Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  if (!d->log_dirty) {
    return ErrFailedPrecondition("log-dirty not enabled");
  }
  std::vector<Gfn> out(d->dirty_log.begin(), d->dirty_log.end());
  d->dirty_log.clear();
  return out;
}

Result<GrantRef> Hypervisor::GrantAccess(DomId granter, DomId grantee, Gfn gfn, bool readonly) {
  Domain* g = FindDomain(granter);
  if (g == nullptr) {
    return ErrNotFound("no such granter");
  }
  if (gfn >= g->p2m.size()) {
    return ErrOutOfRange("gfn outside granter p2m");
  }
  if (g->p2m[gfn].mfn == kInvalidMfn) {
    // Granting a deferred (lazy-clone) page: materialise it first so the
    // mapping side never sees a hole.
    if (lazy_touch_hook_) {
      NEPHELE_RETURN_IF_ERROR(lazy_touch_hook_(granter, gfn));
    }
    if (g->p2m[gfn].mfn == kInvalidMfn) {
      return ErrFailedPrecondition("grant of not-present page");
    }
  }
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_grant_access_));
  auto ref = g->grants.GrantAccess(grantee, gfn, readonly);
  if (ref.ok()) {
    m_grant_accesses_.Increment();
  }
  return ref;
}

Result<Gfn> Hypervisor::MapGrant(DomId mapper, DomId granter, GrantRef ref) {
  Domain* g = FindDomain(granter);
  if (g == nullptr) {
    return ErrNotFound("no such granter");
  }
  Domain* m = FindDomain(mapper);
  if (m == nullptr) {
    return ErrNotFound("no such mapper");
  }
  bool is_child = IsDescendantOf(mapper, granter);
  auto gfn = g->grants.Map(ref, mapper, is_child);
  if (gfn.ok()) {
    m->grant_maps.emplace_back(granter, ref);
    m_grant_maps_.Increment();
  }
  return gfn;
}

Status Hypervisor::UnmapGrant(DomId mapper, DomId granter, GrantRef ref) {
  Domain* g = FindDomain(granter);
  if (g == nullptr) {
    return ErrNotFound("no such granter");
  }
  Domain* m = FindDomain(mapper);
  if (m == nullptr) {
    return ErrNotFound("no such mapper");
  }
  Status s = g->grants.Unmap(ref, mapper);
  if (s.ok()) {
    auto it = std::find(m->grant_maps.begin(), m->grant_maps.end(),
                        std::make_pair(granter, ref));
    if (it != m->grant_maps.end()) {
      m->grant_maps.erase(it);
    }
    m_grant_unmaps_.Increment();
  }
  return s;
}

Status Hypervisor::EndGrantAccess(DomId granter, GrantRef ref) {
  Domain* g = FindDomain(granter);
  if (g == nullptr) {
    return ErrNotFound("no such granter");
  }
  Status s = g->grants.EndAccess(ref);
  if (s.ok()) {
    m_grant_end_accesses_.Increment();
  }
  return s;
}

Result<EvtchnPort> Hypervisor::EvtchnAllocUnbound(DomId dom, DomId remote) {
  Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_evtchn_alloc_));
  return d->evtchns.AllocUnbound(remote);
}

Result<EvtchnPort> Hypervisor::EvtchnBindInterdomain(DomId dom, DomId remote,
                                                     EvtchnPort remote_port) {
  Domain* d = FindDomain(dom);
  Domain* r = FindDomain(remote);
  if (d == nullptr || r == nullptr) {
    return ErrNotFound("no such domain");
  }
  if (!r->evtchns.ValidPort(remote_port)) {
    return ErrNotFound("remote port not allocated");
  }
  EvtchnEntry& re = r->evtchns.mutable_entry(remote_port);
  if (re.state != EvtchnState::kUnbound) {
    return ErrFailedPrecondition("remote port not unbound");
  }
  bool allowed = re.remote_dom == dom ||
                 (re.remote_dom == kDomChild && IsDescendantOf(dom, remote));
  if (!allowed) {
    return ErrPermissionDenied("port reserved for another domain");
  }
  NEPHELE_ASSIGN_OR_RETURN(EvtchnPort port, d->evtchns.AllocUnbound(remote));
  NEPHELE_RETURN_IF_ERROR(d->evtchns.BindInterdomain(port, remote, remote_port));
  re.state = EvtchnState::kInterdomain;
  re.remote_dom = dom;
  re.remote_port = port;
  return port;
}

Result<EvtchnPort> Hypervisor::EvtchnBindVirq(DomId dom, Virq virq) {
  Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  return d->evtchns.BindVirq(virq);
}

Status Hypervisor::EvtchnSend(DomId dom, EvtchnPort port) {
  Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  if (!d->evtchns.ValidPort(port)) {
    return ErrNotFound("port not allocated");
  }
  const EvtchnEntry& e = d->evtchns.entry(port);
  if (e.state != EvtchnState::kInterdomain) {
    return ErrFailedPrecondition("port not connected");
  }
  Domain* remote = FindDomain(e.remote_dom);
  if (remote == nullptr) {
    return ErrNotFound("remote domain gone");
  }
  // The remote entry must itself still be a connected channel; a stale or
  // out-of-range remote_port (peer closed, rebound, or a corrupted handle)
  // must not have its pending bit forced. Note the remote entry need not
  // point back at (dom, port): IDC fan-in entries are many-to-one by design.
  if (e.remote_port >= remote->evtchns.max_ports()) {
    return ErrFailedPrecondition("remote port out of range");
  }
  EvtchnEntry& re = remote->evtchns.mutable_entry(e.remote_port);
  if (re.state != EvtchnState::kInterdomain) {
    return ErrFailedPrecondition("remote port not connected");
  }
  re.pending = true;
  DomId remote_id = remote->id;
  EvtchnPort remote_port = e.remote_port;
  // Upcall delivery is asynchronous, like a real interrupt.
  loop_.Post(SimDuration::Micros(2), [this, remote_id, remote_port] {
    Domain* rd = FindDomain(remote_id);
    if (rd == nullptr || rd->IsPaused()) {
      return;  // pending bit stays set; delivered on unpause by the runtime
    }
    auto it = evtchn_handlers_.find(remote_id);
    if (it != evtchn_handlers_.end()) {
      rd->evtchns.mutable_entry(remote_port).pending = false;
      it->second(remote_port);
    }
  });
  return Status::Ok();
}

Status Hypervisor::EvtchnClose(DomId dom, EvtchnPort port) {
  Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  NEPHELE_RETURN_IF_ERROR(d->evtchns.Close(port));
  // Unbind every connected channel that still pointed at the closed port —
  // the back-pointered peer of a mutual binding, plus any fan-in entries
  // (IDC rebinding, cloned tables) that reference it without one. Leaving
  // them connected would let a later send set a pending bit on whatever
  // reuses the port. The sweep cascades: if the scrubbed peer was itself an
  // IDC fan-in hub (the first child of a multi-way clone), the siblings
  // bound to it must be disconnected as well, or they dangle.
  CascadeEvtchnUnbind({{dom, port}});
  return Status::Ok();
}

void Hypervisor::SetEvtchnHandler(DomId dom, EvtchnHandler handler) {
  evtchn_handlers_[dom] = std::move(handler);
}

Status Hypervisor::RaiseVirq(DomId dom, Virq virq) {
  Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  NEPHELE_ASSIGN_OR_RETURN(EvtchnPort port, d->evtchns.FindVirqPort(virq));
  d->evtchns.mutable_entry(port).pending = true;
  loop_.Post(SimDuration::Micros(2), [this, dom, port] {
    Domain* rd = FindDomain(dom);
    if (rd == nullptr) {
      return;
    }
    auto it = evtchn_handlers_.find(dom);
    if (it != evtchn_handlers_.end()) {
      rd->evtchns.mutable_entry(port).pending = false;
      it->second(port);
    }
  });
  return Status::Ok();
}

bool Hypervisor::IsDescendantOf(DomId maybe_child, DomId ancestor) const {
  const Domain* d = FindDomain(maybe_child);
  while (d != nullptr && d->parent != kDomInvalid) {
    if (d->parent == ancestor) {
      return true;
    }
    d = FindDomain(d->parent);
  }
  return false;
}

bool Hypervisor::SameFamily(DomId a, DomId b) const {
  const Domain* da = FindDomain(a);
  const Domain* db = FindDomain(b);
  if (da == nullptr || db == nullptr) {
    return false;
  }
  return da->family_root == db->family_root;
}

std::size_t Hypervisor::DomainOwnedFrames(DomId dom) const {
  const Domain* d = FindDomain(dom);
  if (d == nullptr) {
    return 0;
  }
  std::size_t n = 0;
  for (const auto& e : d->p2m) {
    if (e.mfn != kInvalidMfn && frames_.OwnerOf(e.mfn) == dom) {
      ++n;
    }
  }
  n += d->page_table_frames.size();
  n += d->p2m_frames.size();
  return n;
}

}  // namespace nephele
