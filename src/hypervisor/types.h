// Core identifier types of the simulated Xen-like hypervisor.

#ifndef SRC_HYPERVISOR_TYPES_H_
#define SRC_HYPERVISOR_TYPES_H_

#include <cstdint>
#include <limits>

namespace nephele {

// Domain identifier. Mirrors Xen's domid_t.
using DomId = std::uint16_t;

// Machine frame number: index into the machine frame table.
using Mfn = std::uint32_t;

// Guest (pseudo-physical) frame number: index into a domain's p2m.
using Gfn = std::uint32_t;

// Grant reference: index into a domain's grant table.
using GrantRef = std::uint32_t;

// Event-channel port number, per domain.
using EvtchnPort = std::uint32_t;

// The privileged host domain.
inline constexpr DomId kDom0 = 0;

// Special domain ids, in Xen's reserved range (>= 0x7FF0).
// Owner of pages shared copy-on-write between family members (Snowflock /
// Nephele page-sharing design, Sec. 5.2).
inline constexpr DomId kDomCow = 0x7FF2;
// Invalid/unset domain id.
inline constexpr DomId kDomInvalid = 0x7FF4;
// Nephele's new wildcard (Sec. 5.1): names "whatever clones this domain will
// have" in grant-table entries and event channels created before any clone
// exists.
inline constexpr DomId kDomChild = 0x7FF6;

inline constexpr Mfn kInvalidMfn = std::numeric_limits<Mfn>::max();
inline constexpr Gfn kInvalidGfn = std::numeric_limits<Gfn>::max();
inline constexpr EvtchnPort kInvalidPort = std::numeric_limits<EvtchnPort>::max();
inline constexpr GrantRef kInvalidGrantRef = std::numeric_limits<GrantRef>::max();

// Virtual interrupt lines. Only the ones this system uses.
enum class Virq : int {
  kTimer = 0,
  kConsole = 1,
  kDomExc = 2,
  // New in Nephele (Sec. 5.1): raised towards Dom0 after the hypervisor
  // completes the first stage of a clone, waking the xencloned daemon.
  kCloned = 13,
};

// Role a guest page plays; decides clone behaviour (Sec. 4.1/5.2): private
// pages are rewritten or duplicated, everything else is shared COW.
enum class PageRole : std::uint8_t {
  kData = 0,        // regular guest memory -> shared, COW
  kImageText = 1,   // unikernel text, read-only -> shared, never faults
  kPageTable = 2,   // private: contains machine addresses, rewritten
  kP2m = 3,         // private: physical-to-machine map, rewritten
  kStartInfo = 4,   // private: Xen start_info directory page, rewritten
  kConsoleRing = 5, // private: console I/O ring, fresh (not copied; Sec. 4.2)
  kXenstoreRing = 6,// private: Xenstore comm page, fresh
  kIoRing = 7,      // private: PV device shared ring, duplicated (vif)
  kIoBuffer = 8,    // private: preallocated RX/TX buffers (allocator metadata)
  kIdcShared = 9,   // IDC region: genuinely shared writable between family
};

// True when cloning must not share the page between parent and child.
constexpr bool IsPrivateRole(PageRole role) {
  return role != PageRole::kData && role != PageRole::kImageText &&
         role != PageRole::kIdcShared;
}

}  // namespace nephele

#endif  // SRC_HYPERVISOR_TYPES_H_
