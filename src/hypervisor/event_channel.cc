#include "src/hypervisor/event_channel.h"

#include <algorithm>

namespace nephele {

Result<EvtchnPort> EvtchnTable::AllocPort() {
  // Port 0 is reserved, as on Xen.
  for (std::size_t i = 1; i < ports_.size(); ++i) {
    if (ports_[i].state == EvtchnState::kFree) {
      used_limit_ = std::max(used_limit_, i + 1);
      return static_cast<EvtchnPort>(i);
    }
  }
  return ErrResourceExhausted("event channel table full");
}

Result<EvtchnPort> EvtchnTable::AllocUnbound(DomId remote) {
  NEPHELE_ASSIGN_OR_RETURN(EvtchnPort port, AllocPort());
  EvtchnEntry& e = ports_[port];
  e.state = EvtchnState::kUnbound;
  e.remote_dom = remote;
  e.remote_port = kInvalidPort;
  e.pending = false;
  e.idc = (remote == kDomChild);
  return port;
}

Status EvtchnTable::BindInterdomain(EvtchnPort port, DomId remote_dom, EvtchnPort remote_port) {
  if (port >= ports_.size() || ports_[port].state == EvtchnState::kFree) {
    return ErrNotFound("port not allocated");
  }
  EvtchnEntry& e = ports_[port];
  if (e.state == EvtchnState::kInterdomain) {
    return ErrFailedPrecondition("port already bound");
  }
  e.state = EvtchnState::kInterdomain;
  e.remote_dom = remote_dom;
  e.remote_port = remote_port;
  return Status::Ok();
}

Result<EvtchnPort> EvtchnTable::BindVirq(Virq virq) {
  // One binding per VIRQ per domain.
  for (std::size_t i = 1; i < ports_.size(); ++i) {
    if (ports_[i].state == EvtchnState::kVirq && ports_[i].virq == virq) {
      return ErrAlreadyExists("virq already bound");
    }
  }
  NEPHELE_ASSIGN_OR_RETURN(EvtchnPort port, AllocPort());
  EvtchnEntry& e = ports_[port];
  e.state = EvtchnState::kVirq;
  e.virq = virq;
  e.pending = false;
  return port;
}

Status EvtchnTable::Close(EvtchnPort port) {
  if (port >= ports_.size() || ports_[port].state == EvtchnState::kFree) {
    return ErrNotFound("port not allocated");
  }
  ports_[port] = EvtchnEntry{};
  return Status::Ok();
}

Result<EvtchnPort> EvtchnTable::FindVirqPort(Virq virq) const {
  for (std::size_t i = 1; i < ports_.size(); ++i) {
    if (ports_[i].state == EvtchnState::kVirq && ports_[i].virq == virq) {
      return static_cast<EvtchnPort>(i);
    }
  }
  return ErrNotFound("virq not bound");
}

std::size_t EvtchnTable::active_ports() const {
  std::size_t n = 0;
  for (const auto& e : ports_) {
    if (e.state != EvtchnState::kFree) {
      ++n;
    }
  }
  return n;
}

EvtchnTable EvtchnTable::CloneForChild() const {
  EvtchnTable child(ports_.size());
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    child.ports_[i] = ports_[i];
    child.ports_[i].pending = false;
  }
  child.used_limit_ = used_limit_;
  return child;
}

}  // namespace nephele
