// Per-domain grant table: the Xen primitive for sharing memory across
// domains. Nephele extends the interface with the DOMID_CHILD wildcard
// (Sec. 5.1): grants made to kDomChild are valid for every future clone of
// the granting domain.

#ifndef SRC_HYPERVISOR_GRANT_TABLE_H_
#define SRC_HYPERVISOR_GRANT_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/base/result.h"
#include "src/hypervisor/types.h"

namespace nephele {

struct GrantEntry {
  bool in_use = false;
  // Domain allowed to map the granted page; may be kDomChild.
  DomId grantee = kDomInvalid;
  // The granting domain's frame being shared.
  Gfn gfn = kInvalidGfn;
  bool readonly = false;
  // Count of active mappings; the entry cannot be revoked while nonzero.
  std::uint32_t map_count = 0;
  // Who holds those mappings, one element per mapping (a domain mapping the
  // same ref twice appears twice). Always map_count elements; kept so unmap
  // can reject foreign callers and domain destruction can revoke exactly the
  // dying domain's mappings.
  std::vector<DomId> mappers;
};

class GrantTable {
 public:
  explicit GrantTable(std::size_t max_entries = 1024) : entries_(max_entries) {}

  std::size_t max_entries() const { return entries_.size(); }
  std::size_t active_entries() const { return active_; }

  // Grants `grantee` access to `gfn`. Returns the grant reference.
  Result<GrantRef> GrantAccess(DomId grantee, Gfn gfn, bool readonly);

  // Revokes a grant. Fails while mappings are outstanding.
  Status EndAccess(GrantRef ref);

  // Checks that `mapper` may map `ref`; increments the map count.
  // `granter_children_ok` tells whether `mapper` is a clone of the granting
  // domain, which validates kDomChild wildcard entries.
  Result<Gfn> Map(GrantRef ref, DomId mapper, bool mapper_is_child_of_granter);

  // Drops one of `mapper`'s mappings of `ref`. A caller holding no mapping
  // cannot decrement someone else's: kFailedPrecondition when the entry is
  // unmapped, kPermissionDenied when it is mapped but not by `mapper`.
  Status Unmap(GrantRef ref, DomId mapper);

  const GrantEntry& entry(GrantRef ref) const { return entries_[ref]; }
  GrantEntry& mutable_entry(GrantRef ref) { return entries_[ref]; }

  // Deep copy used by the clone first stage: the child inherits all entries.
  // Wildcard (kDomChild) entries stay wildcards in the child so that
  // grandchildren work; map counts reset.
  GrantTable CloneForChild() const;

 private:
  std::vector<GrantEntry> entries_;
  std::size_t active_ = 0;
};

}  // namespace nephele

#endif  // SRC_HYPERVISOR_GRANT_TABLE_H_
