// struct Domain: the hypervisor-side state of one guest (Xen's struct domain
// analogue). Plain aggregate by design — the Hypervisor object (and the clone
// engine in src/core) manage its invariants, mirroring how Xen code treats
// struct domain.

#ifndef SRC_HYPERVISOR_DOMAIN_H_
#define SRC_HYPERVISOR_DOMAIN_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/hypervisor/event_channel.h"
#include "src/hypervisor/grant_table.h"
#include "src/hypervisor/types.h"

namespace nephele {

// User-register file of one virtual CPU. Only the registers the cloning
// protocol cares about are modelled individually; rax carries the CLONEOP
// return value (0 in the parent, 1 in any child — Sec. 5.2).
struct VcpuState {
  std::uint64_t rax = 0;
  std::uint64_t rbx = 0;
  std::uint64_t rcx = 0;
  std::uint64_t rdx = 0;
  std::uint64_t rsi = 0;
  std::uint64_t rdi = 0;
  std::uint64_t rsp = 0;
  std::uint64_t rip = 0;
  // CPU pinning; replicated on clone (Sec. 5.2 "the CPU affinity ... are
  // replicated").
  int affinity = -1;
  bool online = true;
};

enum class DomainState : std::uint8_t {
  kCreated = 0,  // allocated, not yet unpaused
  kRunning,
  kPaused,
  kDying,
};

// One entry of the physical-to-machine map.
struct P2mEntry {
  Mfn mfn = kInvalidMfn;
  PageRole role = PageRole::kData;
  // Cleared when the backing frame enters COW sharing; a write then faults.
  bool writable = true;
};

struct Domain {
  DomId id = kDomInvalid;
  std::string name;
  DomainState state = DomainState::kCreated;

  std::vector<VcpuState> vcpus;

  // Guest pseudo-physical address space. Index = gfn.
  std::vector<P2mEntry> p2m;
  // Machine frames holding this domain's page tables (direct-paging: they
  // contain machine addresses, hence always private — Sec. 4.1).
  std::vector<Mfn> page_table_frames;
  // Frames holding the p2m itself (private: rewritten on clone/migration).
  std::vector<Mfn> p2m_frames;

  // Well-known special pages (private on clone; Sec. 5.2 "console page, the
  // Xenstore interface page, the start_info page").
  Gfn start_info_gfn = kInvalidGfn;
  Gfn console_ring_gfn = kInvalidGfn;
  Gfn xenstore_ring_gfn = kInvalidGfn;

  GrantTable grants;
  EvtchnTable evtchns;
  // Mapper-side record of grant mappings this domain holds into other
  // domains' tables, one (granter, ref) pair per mapping. The granter-side
  // GrantEntry::mappers list is the mirror; Hypervisor::MapGrant/UnmapGrant
  // keep the two in lock step and DestroyDomain force-revokes both ways.
  std::vector<std::pair<DomId, GrantRef>> grant_maps;

  // --- Cloning configuration (toolstack-controlled; Sec. 5.1 domctl). ---
  bool cloning_enabled = false;
  std::uint32_t max_clones = 0;
  std::uint32_t clones_created = 0;

  // --- Family bookkeeping (Sec. 4: common-ancestor relation). ---
  DomId parent = kDomInvalid;
  DomId family_root = kDomInvalid;  // == id for a booted domain
  std::vector<DomId> children;

  // True while the parent is blocked in CLONEOP waiting for second-stage
  // completion (Sec. 5: "The parent domain is paused until the completion of
  // second stage").
  bool blocked_in_clone = false;

  // Dirty-page tracking for clone_reset (KFX fuzzing, Sec. 7.2): gfns whose
  // frames diverged from the shared post-clone state.
  bool track_dirty = false;
  std::vector<Gfn> dirty_since_clone;

  // Log-dirty mode (XEN_DOMCTL_SHADOW_OP_ENABLE_LOGDIRTY analogue): records
  // every written gfn for pre-copy live migration.
  bool log_dirty = false;
  std::set<Gfn> dirty_log;

  // --- Lazy-clone deferred ledger (post-copy cloning). ---
  // Number of p2m entries deliberately left not-present (mfn == kInvalidMfn)
  // by a lazy stage 1 and not yet streamed or demand-faulted in. The
  // invariant oracle requires the not-present entry count of every live
  // domain to equal this ledger exactly: a stray kInvalidMfn outside an
  // active lazy stream is a bug, not a tolerated hole.
  std::size_t lazy_deferred_pages = 0;

  // Statistics.
  std::uint64_t cow_faults = 0;
  std::uint64_t cow_pages_copied = 0;

  std::size_t tot_pages() const { return p2m.size(); }
  bool IsPaused() const { return state == DomainState::kPaused || state == DomainState::kCreated; }
};

}  // namespace nephele

#endif  // SRC_HYPERVISOR_DOMAIN_H_
