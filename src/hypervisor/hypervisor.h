// The simulated Xen-like hypervisor: owns machine memory, the domain table,
// and the notification fabric (event channels + VIRQs). Guests and the
// toolstack interact with it through the hypercall-shaped methods below; the
// cloning extension (CLONEOP) lives in src/core/clone_op.h and operates on
// the same state.

#ifndef SRC_HYPERVISOR_HYPERVISOR_H_
#define SRC_HYPERVISOR_HYPERVISOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/result.h"
#include "src/base/status.h"
#include "src/fault/fault.h"
#include "src/hypervisor/domain.h"
#include "src/hypervisor/frame_table.h"
#include "src/hypervisor/types.h"
#include "src/obs/metrics.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_loop.h"

namespace nephele {

struct HypervisorConfig {
  // Machine memory managed by the hypervisor for guests (the paper's setup:
  // 16 GiB machine, 4 GiB to Dom0, 12 GiB to the hypervisor pool — Sec. 6.2).
  std::size_t pool_frames = 12 * kGiB / kPageSize;
  // Xen enforces a minimum domain size of 4 MiB (Sec. 6.2).
  std::size_t min_domain_pages = 4 * kMiB / kPageSize;
  std::size_t grant_entries_per_domain = 1024;
  std::size_t evtchn_ports_per_domain = 1024;
};

class Hypervisor {
 public:
  // `metrics` may be null: the hypervisor then records into a private
  // registry so standalone constructions stay valid. NepheleSystem injects
  // its shared registry.
  // `faults` may also be null — fault points are then never armed.
  Hypervisor(EventLoop& loop, const CostModel& costs, HypervisorConfig config = {},
             MetricsRegistry* metrics = nullptr, FaultInjector* faults = nullptr);

  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  EventLoop& loop() { return loop_; }
  const CostModel& costs() const { return costs_; }
  FrameTable& frames() { return frames_; }
  const FrameTable& frames() const { return frames_; }
  const HypervisorConfig& config() const { return config_; }

  // ---------------------------------------------------------------------
  // domctl: domain lifecycle (toolstack-only on real Xen).
  // ---------------------------------------------------------------------
  Result<DomId> CreateDomain(const std::string& name, int vcpus);
  Status DestroyDomain(DomId dom);
  Status PauseDomain(DomId dom);
  Status UnpauseDomain(DomId dom);
  Status SetDomainName(DomId dom, const std::string& name);

  // Nephele domctl extension (Sec. 5.1): enables cloning and caps the clone
  // count for a domain. max_clones == 0 disables cloning.
  Status SetCloneConfig(DomId dom, bool enabled, std::uint32_t max_clones);
  // xencloned enables cloning globally before serving notifications.
  void SetCloningGloballyEnabled(bool enabled) { cloning_globally_enabled_ = enabled; }
  bool cloning_globally_enabled() const { return cloning_globally_enabled_; }

  Domain* FindDomain(DomId dom);
  const Domain* FindDomain(DomId dom) const;
  std::vector<DomId> DomainIds() const;
  std::size_t NumDomains() const { return domains_.size(); }

  // ---------------------------------------------------------------------
  // Memory hypercalls.
  // ---------------------------------------------------------------------
  // Appends `pages` fresh frames to the domain's p2m with the given role.
  // Returns the first new gfn.
  Result<Gfn> PopulatePhysmap(DomId dom, std::size_t pages, PageRole role);

  // Allocates one special page, records it on the domain, returns its gfn.
  Result<Gfn> AllocSpecialPage(DomId dom, PageRole role);

  // Builds the domain's page tables for its current p2m size (used at boot
  // and rebuilt for clones/restores). Frames are accounted as private.
  Status BuildPageTables(DomId dom);

  // Allocates one frame charged to `dom` without touching its p2m — the
  // clone engine's allocation path (so pool exhaustion and fault injection
  // are funnelled through one place). The caller records the frame.
  Result<Mfn> AllocGuestFrame(DomId dom) { return AllocFrameFor(dom); }

  // Same allocation path minus the event-loop charge: the parallel clone
  // engine plans a whole batch serially and charges virtual time per child
  // lane (max over lanes, not sum), so the frame_alloc cost must land on the
  // lane, not on the loop. Fault injection and pool exhaustion behave
  // exactly like AllocGuestFrame.
  Result<Mfn> StageGuestFrame(DomId dom) {
    NEPHELE_RETURN_IF_ERROR(PokeFault(f_frame_alloc_));
    return frames_.Alloc(dom);
  }

  // Guest memory access. Writes resolve COW faults (charging cost model
  // time) and are the only mutation path for shared frames.
  Status WriteGuestPage(DomId dom, Gfn gfn, std::size_t offset, const void* src,
                        std::size_t len);
  Status ReadGuestPage(DomId dom, Gfn gfn, std::size_t offset, void* out, std::size_t len) const;

  // Marks `count` pages starting at `gfn` dirty (resolving COW) without
  // materialising byte contents — the fast path used by guest allocators.
  Status TouchGuestPages(DomId dom, Gfn gfn, std::size_t count);

  // Resolves a COW fault for one page without writing (the clone_cow
  // subcommand uses this to un-share pages before breakpoint insertion).
  Status ForceCowResolve(DomId dom, Gfn gfn);

  // Log-dirty mode for pre-copy live migration (the shadow-op domctl):
  // while enabled, every guest write records its gfn.
  Status SetDirtyLogging(DomId dom, bool enabled);
  // Returns and clears the dirty set (one pre-copy round).
  Result<std::vector<Gfn>> FetchAndResetDirtyLog(DomId dom);

  // ---------------------------------------------------------------------
  // Grant-table hypercalls. (The grant *table* belongs to the granter; the
  // mapping side validates family relationship for kDomChild wildcards.)
  // ---------------------------------------------------------------------
  Result<GrantRef> GrantAccess(DomId granter, DomId grantee, Gfn gfn, bool readonly);
  Result<Gfn> MapGrant(DomId mapper, DomId granter, GrantRef ref);
  Status UnmapGrant(DomId mapper, DomId granter, GrantRef ref);
  Status EndGrantAccess(DomId granter, GrantRef ref);

  // ---------------------------------------------------------------------
  // Event-channel hypercalls.
  // ---------------------------------------------------------------------
  Result<EvtchnPort> EvtchnAllocUnbound(DomId dom, DomId remote);
  // Binds dom:<new port> to remote:remote_port (which must be unbound and
  // name `dom` or kDomChild). Also completes the remote entry.
  Result<EvtchnPort> EvtchnBindInterdomain(DomId dom, DomId remote, EvtchnPort remote_port);
  Result<EvtchnPort> EvtchnBindVirq(DomId dom, Virq virq);
  Status EvtchnSend(DomId dom, EvtchnPort port);
  Status EvtchnClose(DomId dom, EvtchnPort port);

  // Registers the upcall a domain runs when one of its ports fires.
  using EvtchnHandler = std::function<void(EvtchnPort)>;
  void SetEvtchnHandler(DomId dom, EvtchnHandler handler);

  // Raises a VIRQ towards a domain (delivered through its bound port).
  Status RaiseVirq(DomId dom, Virq virq);

  // ---------------------------------------------------------------------
  // Family relations (Sec. 4).
  // ---------------------------------------------------------------------
  bool IsDescendantOf(DomId maybe_child, DomId ancestor) const;
  bool SameFamily(DomId a, DomId b) const;

  // ---------------------------------------------------------------------
  // Accounting & stats.
  // ---------------------------------------------------------------------
  std::size_t FreePoolFrames() const { return frames_.free_frames(); }
  std::size_t TotalPoolFrames() const { return frames_.total_frames(); }
  // Frames charged to a domain: owned frames + its share of nothing (shared
  // frames are charged to nobody once in dom_cow, matching Xen accounting).
  std::size_t DomainOwnedFrames(DomId dom) const;

  std::uint64_t total_cow_faults() const { return total_cow_faults_; }
  std::uint64_t hypercall_count() const { return hypercall_count_; }

  // Charges one hypercall trap cost; public so higher layers (toolstack,
  // guest runtime) account their hypercalls uniformly.
  void ChargeHypercall() {
    loop_.AdvanceBy(costs_.hypercall);
    ++hypercall_count_;
    m_hypercalls_.Increment();
  }

  // Invoked after every resolved COW fault (`copied` is true when a fresh
  // frame was allocated, false for in-place ownership transfer). CloneEngine
  // installs this to fan faults out to its CloneObservers.
  using CowFaultHook = std::function<void(DomId dom, Gfn gfn, bool copied)>;
  void SetCowFaultHook(CowFaultHook hook) { cow_fault_hook_ = std::move(hook); }

  // Lazy-clone (post-copy) integration. The touch hook is invoked before a
  // write fault or grant is resolved on a page that is not writable: the
  // clone engine materialises the domain's own not-present entry (demand
  // fault) and pushes the page to any lazy children still deferring it, so
  // the subsequent COW resolution never mutates a frame a child has yet to
  // snapshot. The destroy hook runs at the start of DestroyDomain, before
  // frames are released, so the engine can finish (or cancel) streams whose
  // source or target is going away.
  using LazyTouchHook = std::function<Status(DomId dom, Gfn gfn)>;
  void SetLazyTouchHook(LazyTouchHook hook) { lazy_touch_hook_ = std::move(hook); }
  using DomainDestroyHook = std::function<void(DomId dom)>;
  void SetDomainDestroyHook(DomainDestroyHook hook) {
    domain_destroy_hook_ = std::move(hook);
  }

  // Registry this hypervisor records into (its own fallback unless one was
  // injected).
  MetricsRegistry& metrics() { return *metrics_; }

 private:
  Result<Mfn> AllocFrameFor(DomId dom);
  Status ResolveCowForWrite(Domain& d, Gfn gfn);
  void ReleaseDomainFrames(Domain& d);
  // Destroy-time revocation of grant mappings held by and into `d`, keeping
  // the granter-side mappers lists and mapper-side grant_maps records in
  // sync (no dangling handles on either side of a dead domain).
  void ScrubGrantMappings(Domain& d);
  // Resets every surviving domain's connected channels that still point at
  // `dom` back to kUnbound, so no event can be delivered through a dead peer.
  void ScrubEvtchnPeers(DomId dom);
  // Unbinds every connected channel pointing at a (dom, port) on the
  // worklist, transitively: an entry unbound by the sweep may itself be the
  // hub of an IDC fan-in (later clone siblings all bind to the first child's
  // port), so entries pointing at *it* must be unbound as well.
  void CascadeEvtchnUnbind(std::vector<std::pair<DomId, EvtchnPort>> work);

  EventLoop& loop_;
  const CostModel& costs_;
  HypervisorConfig config_;
  FrameTable frames_;

  std::unique_ptr<MetricsRegistry> own_metrics_;  // set when none injected
  MetricsRegistry* metrics_;
  Counter& m_hypercalls_;
  Counter& m_cow_faults_;
  Counter& m_cow_pages_copied_;
  Counter& m_grant_accesses_;
  Counter& m_grant_end_accesses_;
  Counter& m_grant_maps_;
  Counter& m_grant_unmaps_;
  Counter& m_domains_created_;
  Counter& m_domains_destroyed_;
  // Null when no injector was wired; Poke'd through the null-safe helper.
  FaultPoint* f_frame_alloc_ = nullptr;
  FaultPoint* f_cow_resolve_ = nullptr;
  FaultPoint* f_grant_access_ = nullptr;
  FaultPoint* f_evtchn_alloc_ = nullptr;
  CowFaultHook cow_fault_hook_;
  LazyTouchHook lazy_touch_hook_;
  DomainDestroyHook domain_destroy_hook_;

  std::map<DomId, std::unique_ptr<Domain>> domains_;
  std::map<DomId, EvtchnHandler> evtchn_handlers_;
  DomId next_domid_ = 1;  // 0 is Dom0
  bool cloning_globally_enabled_ = false;

  std::uint64_t total_cow_faults_ = 0;
  std::uint64_t hypercall_count_ = 0;
};

}  // namespace nephele

#endif  // SRC_HYPERVISOR_HYPERVISOR_H_
