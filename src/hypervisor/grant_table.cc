#include "src/hypervisor/grant_table.h"

#include <algorithm>

namespace nephele {

Result<GrantRef> GrantTable::GrantAccess(DomId grantee, Gfn gfn, bool readonly) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].in_use) {
      entries_[i] = GrantEntry{/*in_use=*/true, grantee, gfn, readonly, /*map_count=*/0};
      ++active_;
      return static_cast<GrantRef>(i);
    }
  }
  return ErrResourceExhausted("grant table full");
}

Status GrantTable::EndAccess(GrantRef ref) {
  if (ref >= entries_.size() || !entries_[ref].in_use) {
    return ErrNotFound("grant ref not in use");
  }
  if (entries_[ref].map_count != 0) {
    return ErrFailedPrecondition("grant still mapped");
  }
  entries_[ref] = GrantEntry{};
  --active_;
  return Status::Ok();
}

Result<Gfn> GrantTable::Map(GrantRef ref, DomId mapper, bool mapper_is_child_of_granter) {
  if (ref >= entries_.size() || !entries_[ref].in_use) {
    return ErrNotFound("grant ref not in use");
  }
  GrantEntry& e = entries_[ref];
  bool allowed = (e.grantee == mapper) ||
                 (e.grantee == kDomChild && mapper_is_child_of_granter);
  if (!allowed) {
    return ErrPermissionDenied("domain not granted access");
  }
  ++e.map_count;
  e.mappers.push_back(mapper);
  return e.gfn;
}

Status GrantTable::Unmap(GrantRef ref, DomId mapper) {
  if (ref >= entries_.size() || !entries_[ref].in_use) {
    return ErrNotFound("grant ref not in use");
  }
  GrantEntry& e = entries_[ref];
  if (e.map_count == 0) {
    return ErrFailedPrecondition("grant not mapped");
  }
  auto it = std::find(e.mappers.begin(), e.mappers.end(), mapper);
  if (it == e.mappers.end()) {
    return ErrPermissionDenied("mapping not held by caller");
  }
  e.mappers.erase(it);
  --e.map_count;
  return Status::Ok();
}

GrantTable GrantTable::CloneForChild() const {
  GrantTable child(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].in_use) {
      child.entries_[i] = entries_[i];
      child.entries_[i].map_count = 0;
      child.entries_[i].mappers.clear();
      ++child.active_;
    }
  }
  return child;
}

}  // namespace nephele
