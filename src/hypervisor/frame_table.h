// Machine frame table: ownership, sharing and accounting for every 4 KiB
// frame of simulated machine memory.
//
// Page contents are materialised lazily: a frame carries real bytes only
// once somebody writes to it. This keeps density experiments (Fig. 5: ~9000
// 4 MiB guests in a 12 GiB pool) cheap while preserving exact accounting and
// observable COW semantics for frames that are actually used.
//
// Threading model: every mutating operation runs on the simulation thread,
// with one exception — StageShareAll(), which clone-engine workers call
// concurrently while staging a batch. StageShareAll serialises per-frame
// through a small array of shard mutexes (keyed by mfn) and the aggregate
// counters it touches are atomic, so concurrent staging of the same parent
// frames by several workers is exact. The free list is never touched off
// the simulation thread.

#ifndef SRC_HYPERVISOR_FRAME_TABLE_H_
#define SRC_HYPERVISOR_FRAME_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/result.h"
#include "src/base/status.h"
#include "src/base/units.h"
#include "src/hypervisor/types.h"

namespace nephele {

using PageData = std::array<std::uint8_t, kPageSize>;

// Per-frame metadata (Xen's struct page_info analogue).
struct FrameInfo {
  DomId owner = kDomInvalid;
  // Number of domains mapping the frame. >1 only while owned by kDomCow.
  // Atomic because clone-engine workers bump it concurrently in
  // StageShareAll.
  std::atomic<std::uint32_t> refcount{0};
  // Set once the frame entered COW sharing (owner == kDomCow).
  bool shared = false;
  bool allocated = false;
  // Lazily materialised contents; null means "all zeroes, never written".
  std::unique_ptr<PageData> data;

  FrameInfo() = default;
  // std::vector needs MoveInsertable elements and std::atomic is not
  // movable; moves only happen single-threaded (construction, f = {}).
  FrameInfo(FrameInfo&& o) noexcept
      : owner(o.owner),
        refcount(o.refcount.load(std::memory_order_relaxed)),
        shared(o.shared),
        allocated(o.allocated),
        data(std::move(o.data)) {}
  FrameInfo& operator=(FrameInfo&& o) noexcept {
    owner = o.owner;
    refcount.store(o.refcount.load(std::memory_order_relaxed), std::memory_order_relaxed);
    shared = o.shared;
    allocated = o.allocated;
    data = std::move(o.data);
    return *this;
  }
};

class FrameTable {
 public:
  // Creates a pool of `total_frames` free frames.
  explicit FrameTable(std::size_t total_frames);

  FrameTable(const FrameTable&) = delete;
  FrameTable& operator=(const FrameTable&) = delete;

  std::size_t total_frames() const { return frames_.size(); }
  std::size_t free_frames() const { return free_count_; }
  std::size_t allocated_frames() const { return frames_.size() - free_count_; }
  // Number of frames currently in COW sharing (owned by dom_cow).
  std::size_t shared_frames() const { return shared_count_.load(std::memory_order_relaxed); }
  // Sum of refcounts of shared frames minus the frames themselves: how many
  // frame-allocations COW sharing is currently saving.
  std::size_t frames_saved_by_sharing() const {
    return saved_by_sharing_.load(std::memory_order_relaxed);
  }

  // Allocates one frame for `owner`. Fails with kResourceExhausted when the
  // pool is empty.
  Result<Mfn> Alloc(DomId owner);

  // Releases one reference to `mfn`:
  //  - unshared frame: frees it;
  //  - shared frame with refcount > 1: drops the refcount;
  //  - shared frame with refcount == 1: frees it.
  Status Release(Mfn mfn);

  // First-time sharing: transfers ownership to dom_cow and sets refcount to 2
  // (the parent and the first clone). Precondition: frame is allocated and
  // not yet shared.
  Status ShareFirst(Mfn mfn);

  // Adds one more sharer to an already-shared frame.
  Status ShareAgain(Mfn mfn);

  // Worker-side sharing for parallel clone staging: adds one sharer to every
  // frame in `mfns`, entering COW sharing (owner moves to dom_cow) for
  // frames that were still private. Unlike ShareFirst/ShareAgain this is
  // commutative — workers may stage the same frames in any order and the
  // final state only depends on how many staged each — and it is the one
  // FrameTable mutation that is safe to call concurrently. The batch is
  // grouped by shard internally, so a whole child costs kLockShards lock
  // acquisitions rather than one per page; `seed` rotates the shard visit
  // order so concurrently staged children start on different shards and
  // rarely meet on a lock. Precondition (guaranteed by the serial plan
  // phase): every frame allocated.
  void StageShareAll(const std::vector<Mfn>& mfns, std::size_t seed);

  // Exact inverse of ShareFirst, for clone rollback: a shared frame whose
  // two references are the parent and the aborted clone goes back to being
  // privately owned by `new_owner`. Precondition: shared with refcount == 2.
  Status Unshare(Mfn mfn, DomId new_owner);

  // Resolves a write to a shared frame for domain `writer`:
  //  - refcount > 1: allocates a private copy, copies contents, drops one
  //    reference from the shared frame, returns the new mfn (a real copy).
  //  - refcount == 1: transfers ownership from dom_cow to `writer` in place
  //    (Sec. 5.2: "on the next page fault the ownership is transferred"),
  //    returns the same mfn.
  struct CowResolution {
    Mfn mfn;
    bool copied;  // true when a fresh frame was allocated
  };
  Result<CowResolution> ResolveCowWrite(Mfn mfn, DomId writer);

  // Raw accessors.
  const FrameInfo& info(Mfn mfn) const { return frames_[mfn]; }
  bool IsShared(Mfn mfn) const { return frames_[mfn].shared; }
  DomId OwnerOf(Mfn mfn) const { return frames_[mfn].owner; }

  // Shard-locked variant of IsShared for the clone plan phase, which runs
  // on the engine thread while workers flip private frames to shared via
  // StageShareAll. Takes the same shard lock that guards the flip; every
  // other accessor assumes no staging is in flight.
  bool IsSharedSync(Mfn mfn) const {
    std::lock_guard<std::mutex> lock(share_locks_[mfn % kLockShards]);
    return frames_[mfn].shared;
  }

  // Reads `len` bytes at `offset` within the frame. Unwritten frames read as
  // zeroes.
  void ReadBytes(Mfn mfn, std::size_t offset, std::uint8_t* out, std::size_t len) const;

  // Writes bytes into the frame, materialising contents on demand. Does NOT
  // perform COW resolution — callers go through Hypervisor/Domain which holds
  // the p2m. Precondition: frame allocated.
  void WriteBytes(Mfn mfn, std::size_t offset, const std::uint8_t* src, std::size_t len);

  // Copies the full contents of `src` into `dst` (both allocated). Safe from
  // clone-engine workers as long as `dst` is private to the caller and
  // nobody writes `src` meanwhile (the parent is paused during staging).
  void CopyPage(Mfn src, Mfn dst);

 private:
  // Shard count for the StageShareAll mutexes: enough that 4-16 workers
  // rarely collide, small enough to keep the table cheap to construct.
  static constexpr std::size_t kLockShards = 64;

  Status CheckAllocated(Mfn mfn) const;

  std::vector<FrameInfo> frames_;
  std::vector<Mfn> free_list_;
  std::size_t free_count_ = 0;
  std::atomic<std::size_t> shared_count_{0};
  std::atomic<std::size_t> saved_by_sharing_{0};
  mutable std::array<std::mutex, kLockShards> share_locks_;
};

}  // namespace nephele

#endif  // SRC_HYPERVISOR_FRAME_TABLE_H_
