#include "src/hypervisor/frame_table.h"

#include <algorithm>
#include <cstring>

namespace nephele {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

FrameTable::FrameTable(std::size_t total_frames) {
  frames_.resize(total_frames);
  free_list_.reserve(total_frames);
  // Hand out low mfns first (reverse free list order).
  for (std::size_t i = total_frames; i > 0; --i) {
    free_list_.push_back(static_cast<Mfn>(i - 1));
  }
  free_count_ = total_frames;
}

Result<Mfn> FrameTable::Alloc(DomId owner) {
  if (free_list_.empty()) {
    return ErrResourceExhausted("machine memory pool empty");
  }
  Mfn mfn = free_list_.back();
  free_list_.pop_back();
  --free_count_;
  FrameInfo& f = frames_[mfn];
  f.owner = owner;
  f.refcount.store(1, kRelaxed);
  f.shared = false;
  f.allocated = true;
  f.data.reset();  // frames are scrubbed: reads are zero until written
  return mfn;
}

Status FrameTable::CheckAllocated(Mfn mfn) const {
  if (mfn >= frames_.size() || !frames_[mfn].allocated) {
    return ErrInvalidArgument("mfn not allocated");
  }
  return Status::Ok();
}

Status FrameTable::Release(Mfn mfn) {
  NEPHELE_RETURN_IF_ERROR(CheckAllocated(mfn));
  FrameInfo& f = frames_[mfn];
  if (f.shared && f.refcount.load(kRelaxed) > 1) {
    f.refcount.fetch_sub(1, kRelaxed);
    saved_by_sharing_.fetch_sub(1, kRelaxed);
    return Status::Ok();
  }
  if (f.shared) {
    shared_count_.fetch_sub(1, kRelaxed);
  }
  f = FrameInfo{};
  free_list_.push_back(mfn);
  ++free_count_;
  return Status::Ok();
}

Status FrameTable::ShareFirst(Mfn mfn) {
  NEPHELE_RETURN_IF_ERROR(CheckAllocated(mfn));
  FrameInfo& f = frames_[mfn];
  if (f.shared) {
    return ErrFailedPrecondition("frame already shared");
  }
  f.owner = kDomCow;
  f.shared = true;
  f.refcount.store(2, kRelaxed);
  shared_count_.fetch_add(1, kRelaxed);
  saved_by_sharing_.fetch_add(1, kRelaxed);
  return Status::Ok();
}

Status FrameTable::ShareAgain(Mfn mfn) {
  NEPHELE_RETURN_IF_ERROR(CheckAllocated(mfn));
  FrameInfo& f = frames_[mfn];
  if (!f.shared) {
    return ErrFailedPrecondition("frame not shared");
  }
  f.refcount.fetch_add(1, kRelaxed);
  saved_by_sharing_.fetch_add(1, kRelaxed);
  return Status::Ok();
}

void FrameTable::StageShareAll(const std::vector<Mfn>& mfns, std::size_t seed) {
  // Counting-sort the batch by shard so each shard mutex is taken once per
  // call instead of once per page (a 16k-page child would otherwise pay 16k
  // remote lock acquisitions, which is slower than staging serially).
  std::array<std::size_t, kLockShards + 1> offset{};
  for (Mfn m : mfns) {
    ++offset[m % kLockShards + 1];
  }
  for (std::size_t s = 0; s < kLockShards; ++s) {
    offset[s + 1] += offset[s];
  }
  std::vector<Mfn> sorted(mfns.size());
  std::array<std::size_t, kLockShards> cursor;
  std::copy_n(offset.begin(), kLockShards, cursor.begin());
  for (Mfn m : mfns) {
    sorted[cursor[m % kLockShards]++] = m;
  }

  // Under each shard lock: `shared`/`owner` flip exactly once no matter
  // which of the batch's workers gets there first, and the refcount counts
  // every sharer. Equivalent to one ShareFirst plus ShareAgain per extra
  // sharer, in any order. The rotated start shard keeps concurrently staged
  // children on disjoint shards most of the time.
  const std::size_t start = (seed * 17) % kLockShards;
  std::size_t newly_shared = 0;
  for (std::size_t i = 0; i < kLockShards; ++i) {
    const std::size_t s = (start + i) % kLockShards;
    if (offset[s] == offset[s + 1]) {
      continue;
    }
    std::lock_guard<std::mutex> lock(share_locks_[s]);
    for (std::size_t j = offset[s]; j < offset[s + 1]; ++j) {
      FrameInfo& f = frames_[sorted[j]];
      f.refcount.fetch_add(1, kRelaxed);
      if (!f.shared) {
        f.shared = true;
        f.owner = kDomCow;
        ++newly_shared;
      }
    }
  }
  shared_count_.fetch_add(newly_shared, kRelaxed);
  saved_by_sharing_.fetch_add(mfns.size(), kRelaxed);
}

Status FrameTable::Unshare(Mfn mfn, DomId new_owner) {
  NEPHELE_RETURN_IF_ERROR(CheckAllocated(mfn));
  FrameInfo& f = frames_[mfn];
  if (!f.shared || f.refcount.load(kRelaxed) != 2) {
    return ErrFailedPrecondition("unshare needs a shared frame with exactly two refs");
  }
  f.owner = new_owner;
  f.shared = false;
  f.refcount.store(1, kRelaxed);
  shared_count_.fetch_sub(1, kRelaxed);
  saved_by_sharing_.fetch_sub(1, kRelaxed);
  return Status::Ok();
}

Result<FrameTable::CowResolution> FrameTable::ResolveCowWrite(Mfn mfn, DomId writer) {
  NEPHELE_RETURN_IF_ERROR(CheckAllocated(mfn));
  FrameInfo& f = frames_[mfn];
  if (!f.shared) {
    return ErrFailedPrecondition("COW write on unshared frame");
  }
  if (f.refcount.load(kRelaxed) == 1) {
    // Last sharer: hand the frame over in place; no copy needed. The new
    // owner may differ from the original owner (Sec. 5.2).
    f.owner = writer;
    f.shared = false;
    shared_count_.fetch_sub(1, kRelaxed);
    return CowResolution{mfn, /*copied=*/false};
  }
  NEPHELE_ASSIGN_OR_RETURN(Mfn copy, Alloc(writer));
  if (f.data != nullptr) {
    CopyPage(mfn, copy);
  }
  f.refcount.fetch_sub(1, kRelaxed);
  saved_by_sharing_.fetch_sub(1, kRelaxed);
  return CowResolution{copy, /*copied=*/true};
}

void FrameTable::ReadBytes(Mfn mfn, std::size_t offset, std::uint8_t* out,
                           std::size_t len) const {
  const FrameInfo& f = frames_[mfn];
  if (f.data == nullptr) {
    std::memset(out, 0, len);
    return;
  }
  std::memcpy(out, f.data->data() + offset, len);
}

void FrameTable::WriteBytes(Mfn mfn, std::size_t offset, const std::uint8_t* src,
                            std::size_t len) {
  FrameInfo& f = frames_[mfn];
  if (f.data == nullptr) {
    f.data = std::make_unique<PageData>();
    f.data->fill(0);
  }
  std::memcpy(f.data->data() + offset, src, len);
}

void FrameTable::CopyPage(Mfn src, Mfn dst) {
  FrameInfo& s = frames_[src];
  FrameInfo& d = frames_[dst];
  if (s.data == nullptr) {
    d.data.reset();
    return;
  }
  if (d.data == nullptr) {
    d.data = std::make_unique<PageData>();
  }
  *d.data = *s.data;
}

}  // namespace nephele
