#include "src/hypervisor/invariants.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>

namespace nephele {

namespace {

std::string DomStr(DomId dom) { return std::to_string(dom); }

}  // namespace

std::string CheckFrameInvariants(const Hypervisor& hv) {
  const FrameTable& ft = hv.frames();
  if (ft.free_frames() + ft.allocated_frames() != ft.total_frames()) {
    return "frame conservation violated: free " + std::to_string(ft.free_frames()) +
           " + allocated " + std::to_string(ft.allocated_frames()) + " != total " +
           std::to_string(ft.total_frames());
  }
  std::unordered_map<Mfn, std::uint64_t> refs;
  refs.reserve(ft.allocated_frames());
  for (DomId id : hv.DomainIds()) {
    const Domain* d = hv.FindDomain(id);
    for (const P2mEntry& e : d->p2m) {
      if (e.mfn != kInvalidMfn) {
        ++refs[e.mfn];
      }
    }
    for (Mfn m : d->page_table_frames) {
      ++refs[m];
    }
    for (Mfn m : d->p2m_frames) {
      ++refs[m];
    }
  }
  if (ft.allocated_frames() != refs.size()) {
    return "frame leak: " + std::to_string(ft.allocated_frames()) + " allocated, " +
           std::to_string(refs.size()) + " mapped";
  }
  for (const auto& [mfn, count] : refs) {
    const FrameInfo& fi = ft.info(mfn);
    if (!fi.allocated) {
      return "freed frame still mapped: mfn " + std::to_string(mfn);
    }
    if (fi.shared) {
      if (fi.refcount.load(std::memory_order_relaxed) != count) {
        return "refcount mismatch on shared mfn " + std::to_string(mfn) + ": table says " +
               std::to_string(fi.refcount.load(std::memory_order_relaxed)) + ", mapped " +
               std::to_string(count) + " times";
      }
    } else if (count != 1) {
      return "unshared mfn " + std::to_string(mfn) + " mapped " + std::to_string(count) +
             " times";
    }
  }
  return "";
}

std::string CheckP2mInvariants(const Hypervisor& hv) {
  const FrameTable& ft = hv.frames();
  for (DomId id : hv.DomainIds()) {
    const Domain* d = hv.FindDomain(id);
    // Partially-mapped (lazy-clone) accounting: every not-present entry must
    // be covered by the domain's deferred ledger, must be read-only, and must
    // have a live parent still holding the page it defers to — otherwise the
    // child's snapshot source is gone and the hole is a plain leak.
    std::size_t not_present = 0;
    for (std::size_t gfn = 0; gfn < d->p2m.size(); ++gfn) {
      const P2mEntry& e = d->p2m[gfn];
      if (e.mfn == kInvalidMfn) {
        ++not_present;
        if (e.writable) {
          return "dom " + DomStr(id) + " gfn " + std::to_string(gfn) +
                 " not-present but writable";
        }
        if (d->lazy_deferred_pages == 0) {
          return "dom " + DomStr(id) + " gfn " + std::to_string(gfn) +
                 " not-present outside an active lazy stream (ledger is 0)";
        }
        const Domain* p = hv.FindDomain(d->parent);
        if (p == nullptr) {
          return "dom " + DomStr(id) + " gfn " + std::to_string(gfn) +
                 " deferred with no live parent to stream from";
        }
        if (gfn >= p->p2m.size() || p->p2m[gfn].mfn == kInvalidMfn) {
          return "dom " + DomStr(id) + " gfn " + std::to_string(gfn) +
                 " deferred but parent dom " + DomStr(d->parent) +
                 " holds no frame there";
        }
        continue;
      }
      if (e.mfn >= ft.total_frames()) {
        return "dom " + DomStr(id) + " gfn " + std::to_string(gfn) + " maps mfn " +
               std::to_string(e.mfn) + " outside the pool";
      }
      const FrameInfo& fi = ft.info(e.mfn);
      if (!fi.allocated) {
        return "dom " + DomStr(id) + " gfn " + std::to_string(gfn) + " maps freed mfn " +
               std::to_string(e.mfn);
      }
      if (fi.shared) {
        if (fi.owner != kDomCow) {
          return "shared mfn " + std::to_string(e.mfn) + " owned by " + DomStr(fi.owner) +
                 ", expected dom_cow";
        }
        // A writable pte over a COW-shared frame would let one sharer mutate
        // every sharer's memory; only IDC regions are shared-and-writable by
        // design.
        if (e.writable && e.role != PageRole::kIdcShared) {
          return "dom " + DomStr(id) + " gfn " + std::to_string(gfn) +
                 " writable over shared mfn " + std::to_string(e.mfn) +
                 " with non-IDC role";
        }
      } else if (fi.owner != id) {
        return "dom " + DomStr(id) + " gfn " + std::to_string(gfn) + " maps private mfn " +
               std::to_string(e.mfn) + " owned by " + DomStr(fi.owner);
      }
    }
    if (not_present != d->lazy_deferred_pages) {
      return "dom " + DomStr(id) + " deferred ledger mismatch: " +
             std::to_string(not_present) + " not-present entries, ledger says " +
             std::to_string(d->lazy_deferred_pages);
    }
    const struct {
      const char* name;
      Gfn gfn;
    } specials[] = {{"start_info", d->start_info_gfn},
                    {"console_ring", d->console_ring_gfn},
                    {"xenstore_ring", d->xenstore_ring_gfn}};
    for (const auto& s : specials) {
      if (s.gfn != kInvalidGfn && s.gfn >= d->p2m.size()) {
        return "dom " + DomStr(id) + " special gfn " + s.name + "=" +
               std::to_string(s.gfn) + " outside p2m of " + std::to_string(d->p2m.size()) +
               " pages";
      }
    }
  }
  return "";
}

std::string CheckGrantInvariants(const Hypervisor& hv) {
  // (mapper, granter, ref) -> multiplicity, built from both sides; the two
  // maps must agree exactly (no dangling handle on either side).
  std::map<std::tuple<DomId, DomId, GrantRef>, std::uint64_t> granter_side;
  std::map<std::tuple<DomId, DomId, GrantRef>, std::uint64_t> mapper_side;
  for (DomId id : hv.DomainIds()) {
    const Domain* d = hv.FindDomain(id);
    for (GrantRef ref = 0; ref < d->grants.max_entries(); ++ref) {
      const GrantEntry& e = d->grants.entry(ref);
      if (!e.in_use) {
        if (e.map_count != 0 || !e.mappers.empty()) {
          return "dom " + DomStr(id) + " grant ref " + std::to_string(ref) +
                 " free but still mapped";
        }
        continue;
      }
      if (e.gfn >= d->p2m.size()) {
        return "dom " + DomStr(id) + " grant ref " + std::to_string(ref) +
               " grants gfn " + std::to_string(e.gfn) + " outside its p2m";
      }
      if (e.map_count != e.mappers.size()) {
        return "dom " + DomStr(id) + " grant ref " + std::to_string(ref) + " map_count " +
               std::to_string(e.map_count) + " != " + std::to_string(e.mappers.size()) +
               " recorded mappers";
      }
      for (DomId mapper : e.mappers) {
        if (hv.FindDomain(mapper) == nullptr) {
          return "dom " + DomStr(id) + " grant ref " + std::to_string(ref) +
                 " mapped by dead domain " + DomStr(mapper);
        }
        ++granter_side[{mapper, id, ref}];
      }
    }
    for (const auto& [granter, ref] : d->grant_maps) {
      const Domain* g = hv.FindDomain(granter);
      if (g == nullptr) {
        return "dom " + DomStr(id) + " holds a mapping into dead granter " + DomStr(granter);
      }
      if (ref >= g->grants.max_entries() || !g->grants.entry(ref).in_use) {
        return "dom " + DomStr(id) + " holds a mapping of revoked grant " + DomStr(granter) +
               ":" + std::to_string(ref);
      }
      ++mapper_side[{id, granter, ref}];
    }
  }
  if (granter_side != mapper_side) {
    for (const auto& [key, n] : granter_side) {
      auto it = mapper_side.find(key);
      if (it == mapper_side.end() || it->second != n) {
        return "grant bookkeeping split-brain: granter " + DomStr(std::get<1>(key)) +
               " ref " + std::to_string(std::get<2>(key)) + " lists mapper " +
               DomStr(std::get<0>(key)) + " x" + std::to_string(n) +
               ", mapper records x" +
               std::to_string(it == mapper_side.end() ? 0 : it->second);
      }
    }
    for (const auto& [key, n] : mapper_side) {
      if (!granter_side.contains(key)) {
        return "grant bookkeeping split-brain: mapper " + DomStr(std::get<0>(key)) +
               " records a mapping of " + DomStr(std::get<1>(key)) + ":" +
               std::to_string(std::get<2>(key)) + " the granter does not list";
      }
    }
  }
  return "";
}

std::string CheckEvtchnInvariants(const Hypervisor& hv) {
  for (DomId id : hv.DomainIds()) {
    const Domain* d = hv.FindDomain(id);
    for (EvtchnPort p = 1; p < d->evtchns.used_port_limit(); ++p) {
      const EvtchnEntry& e = d->evtchns.entry(p);
      if (e.pending && e.state != EvtchnState::kInterdomain &&
          e.state != EvtchnState::kVirq) {
        return "dom " + DomStr(id) + " port " + std::to_string(p) +
               " pending on a disconnected channel";
      }
      if (e.state != EvtchnState::kInterdomain) {
        continue;
      }
      // A connected channel names a concrete, live peer whose remote_port
      // entry is itself connected. (It need not point back here: IDC fan-in
      // entries are many-to-one by design.) kUnbound entries naming a dead
      // domain are legal reservations and carry no delivery path.
      if (e.remote_dom == kDomChild || e.remote_dom == kDomInvalid ||
          e.remote_dom == kDomCow) {
        return "dom " + DomStr(id) + " port " + std::to_string(p) +
               " connected to pseudo-domain " + DomStr(e.remote_dom);
      }
      const Domain* remote = hv.FindDomain(e.remote_dom);
      if (remote == nullptr) {
        return "dangling evtchn: dom " + DomStr(id) + " port " + std::to_string(p) +
               " connected to dead domain " + DomStr(e.remote_dom);
      }
      if (e.remote_port >= remote->evtchns.max_ports()) {
        return "dom " + DomStr(id) + " port " + std::to_string(p) +
               " connected to out-of-range remote port " + std::to_string(e.remote_port);
      }
      if (remote->evtchns.entry(e.remote_port).state != EvtchnState::kInterdomain) {
        return "dangling evtchn: dom " + DomStr(id) + " port " + std::to_string(p) +
               " connected to " + DomStr(e.remote_dom) + ":" +
               std::to_string(e.remote_port) + " which is not connected";
      }
    }
  }
  return "";
}

std::string CheckHypervisorInvariants(const Hypervisor& hv) {
  std::string msg = CheckFrameInvariants(hv);
  if (msg.empty()) {
    msg = CheckP2mInvariants(hv);
  }
  if (msg.empty()) {
    msg = CheckGrantInvariants(hv);
  }
  if (msg.empty()) {
    msg = CheckEvtchnInvariants(hv);
  }
  return msg;
}

}  // namespace nephele
