// Per-domain event-channel table: Xen's asynchronous notification primitive.
// Channels bind either to a (remote domain, remote port) pair, to a VIRQ, or
// sit unbound waiting for a peer. Nephele adds binding to kDomChild: such
// channels are implicitly connected to every clone at clone time (Sec. 5.2.2).

#ifndef SRC_HYPERVISOR_EVENT_CHANNEL_H_
#define SRC_HYPERVISOR_EVENT_CHANNEL_H_

#include <cstdint>
#include <vector>

#include "src/base/result.h"
#include "src/hypervisor/types.h"

namespace nephele {

enum class EvtchnState : std::uint8_t {
  kFree = 0,
  kUnbound,      // allocated, waiting for the remote side to bind
  kInterdomain,  // connected to remote_dom:remote_port
  kVirq,         // bound to a virtual interrupt line
};

struct EvtchnEntry {
  EvtchnState state = EvtchnState::kFree;
  DomId remote_dom = kDomInvalid;  // may be kDomChild for IDC channels
  EvtchnPort remote_port = kInvalidPort;
  Virq virq = Virq::kTimer;
  bool pending = false;
  // Channels marked IDC are parent->clone endpoints; the clone first stage
  // rebinds their remote end to the concrete child domid.
  bool idc = false;
};

class EvtchnTable {
 public:
  explicit EvtchnTable(std::size_t max_ports = 1024) : ports_(max_ports) {}

  std::size_t max_ports() const { return ports_.size(); }

  // Allocates an unbound port that `remote` may later bind to. `remote` may
  // be kDomChild (IDC).
  Result<EvtchnPort> AllocUnbound(DomId remote);

  // Completes an interdomain binding on this side.
  Status BindInterdomain(EvtchnPort port, DomId remote_dom, EvtchnPort remote_port);

  // Allocates a port bound to a VIRQ.
  Result<EvtchnPort> BindVirq(Virq virq);

  Status Close(EvtchnPort port);

  Result<EvtchnPort> FindVirqPort(Virq virq) const;

  const EvtchnEntry& entry(EvtchnPort port) const { return ports_[port]; }
  EvtchnEntry& mutable_entry(EvtchnPort port) { return ports_[port]; }
  bool ValidPort(EvtchnPort port) const {
    return port < ports_.size() && ports_[port].state != EvtchnState::kFree;
  }

  std::size_t active_ports() const;

  // One past the highest port ever allocated (monotone). Ports at or above
  // this are guaranteed kFree, so table sweeps (peer scrubbing on close and
  // domain destruction, the invariant checks) can stop early instead of
  // walking all max_ports() entries.
  std::size_t used_port_limit() const { return used_limit_; }

  // Clone first stage: duplicate the table for a child.
  EvtchnTable CloneForChild() const;

 private:
  Result<EvtchnPort> AllocPort();

  std::vector<EvtchnEntry> ports_;
  std::size_t used_limit_ = 1;  // port 0 is reserved
};

}  // namespace nephele

#endif  // SRC_HYPERVISOR_EVENT_CHANNEL_H_
