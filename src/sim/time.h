// Virtual time for the discrete-event simulation. All durations reported by
// benchmarks are SimDuration values accumulated from the cost model; no wall
// clock is ever consulted.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace nephele {

// Nanoseconds since simulation start.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double ToMillis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr bool operator==(SimTime a, SimTime b) { return a.ns_ == b.ns_; }
  friend constexpr bool operator!=(SimTime a, SimTime b) { return a.ns_ != b.ns_; }
  friend constexpr bool operator<(SimTime a, SimTime b) { return a.ns_ < b.ns_; }
  friend constexpr bool operator<=(SimTime a, SimTime b) { return a.ns_ <= b.ns_; }
  friend constexpr bool operator>(SimTime a, SimTime b) { return a.ns_ > b.ns_; }
  friend constexpr bool operator>=(SimTime a, SimTime b) { return a.ns_ >= b.ns_; }

 private:
  std::int64_t ns_ = 0;
};

// Signed span of virtual time.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t ns) : ns_(ns) {}

  static constexpr SimDuration Nanos(std::int64_t v) { return SimDuration(v); }
  static constexpr SimDuration Micros(double v) {
    return SimDuration(static_cast<std::int64_t>(v * 1e3));
  }
  static constexpr SimDuration Millis(double v) {
    return SimDuration(static_cast<std::int64_t>(v * 1e6));
  }
  static constexpr SimDuration Seconds(double v) {
    return SimDuration(static_cast<std::int64_t>(v * 1e9));
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double ToMicros() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ToMillis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr SimDuration operator+(SimDuration o) const { return SimDuration(ns_ + o.ns_); }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration(ns_ - o.ns_); }
  constexpr SimDuration operator*(double k) const {
    return SimDuration(static_cast<std::int64_t>(static_cast<double>(ns_) * k));
  }
  SimDuration& operator+=(SimDuration o) {
    ns_ += o.ns_;
    return *this;
  }

  friend constexpr bool operator==(SimDuration a, SimDuration b) { return a.ns_ == b.ns_; }
  friend constexpr bool operator!=(SimDuration a, SimDuration b) { return a.ns_ != b.ns_; }
  friend constexpr bool operator<(SimDuration a, SimDuration b) { return a.ns_ < b.ns_; }
  friend constexpr bool operator<=(SimDuration a, SimDuration b) { return a.ns_ <= b.ns_; }
  friend constexpr bool operator>(SimDuration a, SimDuration b) { return a.ns_ > b.ns_; }
  friend constexpr bool operator>=(SimDuration a, SimDuration b) { return a.ns_ >= b.ns_; }

 private:
  std::int64_t ns_ = 0;
};

constexpr SimTime operator+(SimTime t, SimDuration d) { return SimTime(t.ns() + d.ns()); }
constexpr SimDuration operator-(SimTime a, SimTime b) { return SimDuration(a.ns() - b.ns()); }

}  // namespace nephele

#endif  // SRC_SIM_TIME_H_
