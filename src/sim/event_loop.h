// Single-threaded discrete-event loop driving the whole virtualization
// environment. Components charge virtual time with AdvanceBy() for work that
// happens "inline" (hypercalls, memory copies) and Post() deferred work for
// asynchronous activity (daemon wakeups, packet delivery, timers).

#ifndef SRC_SIM_EVENT_LOOP_H_
#define SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace nephele {

class EventLoop {
 public:
  EventLoop() = default;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime Now() const { return now_; }

  // Charges `d` of virtual time to the currently-executing activity.
  void AdvanceBy(SimDuration d) { now_ = now_ + d; }

  // Charges a batch of concurrent activity lanes: the batch costs its
  // longest lane, not the sum. The parallel clone engine models every child
  // of a batch as one lane, so the charge is independent of how many host
  // worker threads executed the staging.
  void AdvanceByCriticalPath(const std::vector<SimDuration>& lanes) {
    SimDuration critical;
    for (SimDuration d : lanes) {
      if (critical < d) {
        critical = d;
      }
    }
    now_ = now_ + critical;
  }

  // Schedules `fn` to run at Now() + delay. Events scheduled for the same
  // instant run in FIFO order (stable by sequence number), which keeps the
  // simulation deterministic.
  void Post(SimDuration delay, std::function<void()> fn);

  // Schedules `fn` at an absolute time (clamped to Now()).
  void PostAt(SimTime when, std::function<void()> fn);

  // Runs events until the queue drains. Returns the number of events run.
  std::size_t Run();

  // Runs events with scheduled time <= deadline; leaves later events queued
  // and sets Now() to the deadline (if it moved past it).
  std::size_t RunUntil(SimTime deadline);

  bool HasPendingEvents() const { return !queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return b.when < a.when;
      }
      return b.seq < a.seq;
    }
  };

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace nephele

#endif  // SRC_SIM_EVENT_LOOP_H_
