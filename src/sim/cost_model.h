// Calibrated virtual-time cost model.
//
// Every constant is anchored to a measurement reported in the Nephele paper
// (EuroSys'23) for their Xeon E5-1620 v2 testbed, or to the companion systems
// it cites (LightVM, ON-DEMAND-FORK). The *shapes* of the reproduced figures
// come from operation counts the simulation actually performs (Xenstore
// requests issued, pages shared, rings copied, ...); these constants only set
// the per-operation scale. Changing a mechanism (e.g. disabling xs_clone)
// changes the counts and therefore the curves — the model is causal.
//
// All durations are virtual time (src/sim/time.h); no wall clock is used.

#ifndef SRC_SIM_COST_MODEL_H_
#define SRC_SIM_COST_MODEL_H_

#include <cstddef>

#include "src/sim/time.h"

namespace nephele {

struct CostModel {
  // ---------------------------------------------------------------------
  // Hypervisor primitives.
  // ---------------------------------------------------------------------
  // Allocating/freeing one machine frame (list ops + scrub amortized).
  SimDuration frame_alloc = SimDuration::Micros(1.5);
  SimDuration frame_free = SimDuration::Micros(0.4);
  // memcpy of one 4 KiB page (~8 GB/s).
  SimDuration page_copy = SimDuration::Micros(0.5);
  // First-time sharing of a page: ownership transfer to dom_cow + mark RO +
  // refcount. Anchor: Fig. 6 first-clone curve sits above the second-clone
  // curve by roughly 2x in the large-memory regime.
  SimDuration page_share_first = SimDuration::Nanos(150);
  // Re-sharing a page already owned by dom_cow (refcount++ + p2m entry +
  // read-only PTE). Anchor: Fig. 6 second clone 79.2 ms at 4096 MiB
  // (~1 Mi pages) with a ~4.1 ms base -> ~72 ns/page.
  SimDuration page_share_again = SimDuration::Nanos(72);
  // COW fault servicing: fault entry + frame alloc + copy + remap.
  SimDuration cow_fault_fixed = SimDuration::Micros(2.0);
  // Rewriting one private page during cloning (start_info, p2m, page-table
  // pages: copy + edit machine frame numbers).
  SimDuration private_page_rewrite = SimDuration::Micros(1.0);
  // Fixed first-stage overhead: struct domain copy, vCPU state, event
  // channels, grant table. Anchor: Sec. 6.1, "first stage ... takes only
  // 1 ms" for a 4 MiB guest; the per-page terms above contribute the rest.
  SimDuration clone_stage1_fixed = SimDuration::Micros(1200);
  // Per-vCPU state replication.
  SimDuration vcpu_clone = SimDuration::Micros(30);
  // Per grant-table / event-channel entry duplication.
  SimDuration grant_entry_clone = SimDuration::Nanos(80);
  SimDuration evtchn_clone = SimDuration::Nanos(120);
  // Hypercall trap/return.
  SimDuration hypercall = SimDuration::Micros(1.0);
  // clone_reset: restoring one dirty page in a KFX iteration. Anchor:
  // Sec. 7.2 — Unikraft reset ~125 us for ~3 dirty pages, Linux VM ~250 us
  // for ~8 pages, i.e. a fixed part plus ~25-30 us/page.
  SimDuration clone_reset_fixed = SimDuration::Micros(50);
  SimDuration clone_reset_per_page = SimDuration::Micros(25);
  // Lazy (post-copy) cloning. One prefetcher batch pays a fixed wakeup +
  // p2m-walk cost on top of the ordinary per-page share costs; a demand
  // fault on a not-present entry pays a fixed trap + materialise cost before
  // the regular COW resolution. Anchors: the "Virtual Memory Streaming"
  // numbers (arXiv 1406.5760) put post-copy fault servicing within a small
  // factor of a COW fault, and batch wakeups at a few microseconds.
  SimDuration lazy_stream_batch_fixed = SimDuration::Micros(5);
  SimDuration lazy_demand_fault_fixed = SimDuration::Micros(2.5);

  // ---------------------------------------------------------------------
  // Xenstore.
  // ---------------------------------------------------------------------
  // Base cost of one request (socket roundtrip + tree op in oxenstored).
  SimDuration xs_request_base = SimDuration::Micros(350);
  // Store-size-dependent component per request (oxenstored bookkeeping).
  // Anchor: Fig. 4 boot grows 160 -> ~300 ms over 1000 instances with ~36
  // requests per boot and ~26 entries added per domain.
  SimDuration xs_per_entry_scan = SimDuration::Nanos(150);
  // Appending one line to the Xenstore access log.
  SimDuration xs_log_append = SimDuration::Micros(2);
  // Access-log rotation: happens every xs_log_rotate_every requests and is
  // charged to the unlucky request that trips it. Anchor: Fig. 4 spikes
  // reach ~1.5-2.5 s above the baseline; with xs_clone the full 1000-clone
  // run sees only 2 rotations.
  std::size_t xs_log_rotate_every = 2200;
  SimDuration xs_log_rotate = SimDuration::Millis(1500);

  // ---------------------------------------------------------------------
  // Toolstack / Dom0 userspace.
  // ---------------------------------------------------------------------
  // xl process spawn + config parse + libxl init for one boot.
  SimDuration xl_exec_overhead = SimDuration::Millis(95);
  // Scanning one existing domain name during the uniqueness check (disabled
  // in the Fig. 4 baseline, kept for the LightVM-style ablation).
  SimDuration name_check_per_domain = SimDuration::Micros(120);
  // Hotplug script + udev event handling for one device in Dom0.
  SimDuration udev_event = SimDuration::Millis(7);
  // Attaching a vif to a bridge / bond / OVS group (ip + sysfs ops).
  SimDuration switch_attach = SimDuration::Millis(7);
  // Frontend/backend negotiation: one xenbus state transition handshake
  // (beyond its Xenstore traffic). A full negotiation takes several.
  SimDuration xenbus_transition = SimDuration::Millis(4.5);
  // Guest-side boot: Mini-OS/Unikraft init to "UDP server ready".
  SimDuration guest_boot = SimDuration::Millis(15);
  // Live migration: per-page p2m walk on each side, plus wire transfer
  // (~1.2 GB/s over the management network).
  SimDuration migrate_per_page = SimDuration::Nanos(300);
  SimDuration MigrateTransferCost(std::size_t bytes) const {
    return SimDuration::Nanos(static_cast<std::int64_t>(static_cast<double>(bytes) * 0.83));
  }

  // Restore: fixed xc_restore overhead on top of per-page copies.
  // Anchor: Fig. 4 restore sits ~20 ms above boot for a 4 MiB guest.
  SimDuration restore_fixed = SimDuration::Millis(18);
  // Save: serialize p2m + write image.
  SimDuration save_fixed = SimDuration::Millis(12);

  // xencloned second-stage bookkeeping outside Xenstore/udev: anchor
  // Sec. 6.2 — userspace operations average 3 ms on first clone and 1.9 ms
  // afterwards (parent info cached). These values are the *non-cached* and
  // *cached* residual costs; the Xenstore read savings emerge from issuing
  // fewer read requests when the cache hits.
  SimDuration xencloned_fixed = SimDuration::Micros(900);
  SimDuration xencloned_parent_scan = SimDuration::Micros(500);

  // ---------------------------------------------------------------------
  // Linux process baseline (src/baseline). Anchors: Fig. 6 — second fork
  // 0.07 ms at 1 MiB and 65.2 ms at 4096 MiB (~65 ns/PTE, ON-DEMAND-FORK's
  // observation that fork is dominated by page-table copying).
  // ---------------------------------------------------------------------
  SimDuration proc_fork_fixed = SimDuration::Micros(55);
  SimDuration proc_fork_pte_copy = SimDuration::Nanos(65);
  // First fork also walks VMAs and write-protects every PTE.
  SimDuration proc_fork_pte_protect = SimDuration::Nanos(40);
  SimDuration proc_cow_fault = SimDuration::Micros(1.8);
  SimDuration proc_exec = SimDuration::Millis(1.2);

  // ---------------------------------------------------------------------
  // Network datapath.
  // ---------------------------------------------------------------------
  // Per-packet cost through the split driver (grant copy + ring bookkeeping)
  // in each direction.
  SimDuration net_tx_packet = SimDuration::Micros(2);
  SimDuration net_rx_packet = SimDuration::Micros(2);
  // Backend-side vif struct creation on the clone shortcut path (the
  // "14 lines of code" of Sec. 5.2.1 — cheap by design).
  SimDuration netback_clone_fixed = SimDuration::Micros(120);

  // ---------------------------------------------------------------------
  // Storage / 9pfs.
  // ---------------------------------------------------------------------
  // One 9p RPC (open/stat/...), Dom0 ramdisk-backed.
  SimDuration p9_rpc = SimDuration::Micros(40);
  // Throughput term for reads/writes (~1.2 GB/s over the shared ring).
  SimDuration p9_byte = SimDuration::Nanos(1);  // per ~1.2 bytes; see P9WriteCost()
  // Cloning one fid table entry in the shared backend process.
  SimDuration p9_fid_clone = SimDuration::Micros(8);
  // QMP clone request roundtrip to the backend process.
  SimDuration qmp_roundtrip = SimDuration::Micros(600);

  // ---------------------------------------------------------------------
  // Virtual block device (the Sec. 5.3 "new device type" extension).
  // ---------------------------------------------------------------------
  // One blkfront request roundtrip (ring + grant map).
  SimDuration vbd_request = SimDuration::Micros(30);
  // Backend-side disk struct creation on the clone shortcut path.
  SimDuration vbd_clone_fixed = SimDuration::Micros(200);
  // Reference-counting one block when snapshotting a disk table.
  SimDuration vbd_block_ref = SimDuration::Nanos(40);
  // Breaking the sharing of one block on write (allocate + copy 4 KiB).
  SimDuration vbd_block_cow = SimDuration::Micros(3);

  // Helper: ramdisk-backed data transfer (~2 GB/s).
  SimDuration VbdTransferCost(std::size_t bytes) const {
    return SimDuration::Nanos(static_cast<std::int64_t>(static_cast<double>(bytes) * 0.5));
  }

  // ---------------------------------------------------------------------
  // Guest-side work.
  // ---------------------------------------------------------------------
  // Serializing one Redis key to RDB format (dict walk + encode).
  SimDuration redis_serialize_key = SimDuration::Nanos(350);
  // Touching (dirtying) a fresh page from the guest allocator.
  SimDuration guest_touch_page = SimDuration::Nanos(120);

  // ---------------------------------------------------------------------
  // Fuzzing (Sec. 7.2 anchors: 2 exec/s boot-per-input, 470 exec/s with
  // cloning, 590 exec/s native AFL, 320 exec/s Linux-VM kernel module).
  // ---------------------------------------------------------------------
  SimDuration afl_overhead_per_iter = SimDuration::Micros(450);
  SimDuration fuzz_exec_unikraft = SimDuration::Micros(1500);
  SimDuration fuzz_exec_process = SimDuration::Micros(1250);
  SimDuration fuzz_exec_kernel_module = SimDuration::Micros(2690);
  SimDuration kfx_breakpoint_insert = SimDuration::Micros(15);
  SimDuration vm_teardown = SimDuration::Millis(330);

  // Helper: 9p data transfer cost for `bytes` payload bytes (~1.2 GB/s).
  SimDuration P9TransferCost(std::size_t bytes) const {
    return SimDuration::Nanos(static_cast<std::int64_t>(static_cast<double>(bytes) * 0.83));
  }
};

// The simulation normally uses one shared, default-constructed model; tests
// construct their own to probe sensitivity.
const CostModel& DefaultCostModel();

}  // namespace nephele

#endif  // SRC_SIM_COST_MODEL_H_
