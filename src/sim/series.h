// Small helpers for emitting benchmark output: named-column tables (one per
// paper figure) and summary statistics. Output format is gnuplot-friendly
// TSV with '#' comment headers, so each bench prints exactly the series the
// corresponding figure plots.

#ifndef SRC_SIM_SERIES_H_
#define SRC_SIM_SERIES_H_

#include <cstdio>
#include <string>
#include <vector>

namespace nephele {

// Accumulates rows of doubles under named columns and prints them as TSV.
class SeriesTable {
 public:
  SeriesTable(std::string title, std::vector<std::string> columns);

  void AddRow(std::vector<double> row);

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<double>& row(std::size_t i) const { return rows_[i]; }
  const std::vector<std::string>& columns() const { return columns_; }

  // Returns the values of one column.
  std::vector<double> Column(std::size_t index) const;

  void Print(std::FILE* out = stdout) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

// Basic running statistics for repeated measurements.
class RunningStat {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return min_; }
  double max() const { return max_; }
  // Sample standard deviation.
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Prints "# <label>: <value>" summary lines used for the headline claims
// (e.g. "clone vs boot speedup: 8.1x").
void PrintSummary(const std::string& label, double value, const std::string& unit = "");

}  // namespace nephele

#endif  // SRC_SIM_SERIES_H_
