#include "src/sim/series.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace nephele {

SeriesTable::SeriesTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void SeriesTable::AddRow(std::vector<double> row) {
  assert(row.size() == columns_.size());
  rows_.push_back(std::move(row));
}

std::vector<double> SeriesTable::Column(std::size_t index) const {
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) {
    out.push_back(r[index]);
  }
  return out;
}

void SeriesTable::Print(std::FILE* out) const {
  std::fprintf(out, "# %s\n", title_.c_str());
  std::fprintf(out, "#");
  for (const auto& c : columns_) {
    std::fprintf(out, "\t%s", c.c_str());
  }
  std::fprintf(out, "\n");
  for (const auto& r : rows_) {
    bool first = true;
    for (double v : r) {
      std::fprintf(out, first ? "%.4f" : "\t%.4f", v);
      first = false;
    }
    std::fprintf(out, "\n");
  }
}

void RunningStat::Add(double x) {
  if (count_ == 0 || x < min_) {
    min_ = x;
  }
  if (count_ == 0 || x > max_) {
    max_ = x;
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

double RunningStat::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  double n = static_cast<double>(count_);
  double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

void PrintSummary(const std::string& label, double value, const std::string& unit) {
  if (unit.empty()) {
    std::printf("# %s: %.3f\n", label.c_str(), value);
  } else {
    std::printf("# %s: %.3f %s\n", label.c_str(), value, unit.c_str());
  }
}

}  // namespace nephele
