// Deterministic RNG (SplitMix64 core) so every experiment is reproducible
// from a seed. Kept separate from <random> engines to guarantee identical
// streams across standard libraries.

#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>

namespace nephele {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) { return NextU64() % bound; }

  // Uniform in [lo, hi].
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(NextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0); }

  // Approximately normal via sum of uniforms (Irwin–Hall, 12 terms).
  double NextGaussian(double mean, double stddev) {
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) {
      sum += NextDouble();
    }
    return mean + (sum - 6.0) * stddev;
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  std::uint64_t state_;
};

}  // namespace nephele

#endif  // SRC_SIM_RNG_H_
