#include "src/sim/event_loop.h"

#include <utility>

namespace nephele {

void EventLoop::Post(SimDuration delay, std::function<void()> fn) {
  if (delay.ns() < 0) {
    delay = SimDuration(0);
  }
  PostAt(now_ + delay, std::move(fn));
}

void EventLoop::PostAt(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    when = now_;
  }
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

std::size_t EventLoop::Run() {
  std::size_t count = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (now_ < ev.when) {
      now_ = ev.when;
    }
    ev.fn();
    ++count;
  }
  return count;
}

std::size_t EventLoop::RunUntil(SimTime deadline) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    if (now_ < ev.when) {
      now_ = ev.when;
    }
    ev.fn();
    ++count;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return count;
}

}  // namespace nephele
