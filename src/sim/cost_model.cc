#include "src/sim/cost_model.h"

namespace nephele {

const CostModel& DefaultCostModel() {
  static const CostModel model;
  return model;
}

}  // namespace nephele
