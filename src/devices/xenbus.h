// Xenbus device model shared declarations: the split-driver state machine and
// device identities.

#ifndef SRC_DEVICES_XENBUS_H_
#define SRC_DEVICES_XENBUS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/hypervisor/types.h"

namespace nephele {

// Negotiation states from xen/include/public/io/xenbus.h. On boot both ends
// walk Initialising -> ... -> Connected; on clone the negotiation is skipped
// and devices are created Connected (Sec. 5.2.1).
enum class XenbusState : int {
  kUnknown = 0,
  kInitialising = 1,
  kInitWait = 2,
  kInitialised = 3,
  kConnected = 4,
  kClosing = 5,
  kClosed = 6,
};

std::string_view XenbusStateName(XenbusState s);
inline std::string XenbusStateValue(XenbusState s) {
  return std::to_string(static_cast<int>(s));
}

enum class DeviceType : int {
  kConsole = 0,
  kVif = 1,
  kP9fs = 2,
  // Extension device type (Sec. 5.3): virtual block device.
  kVbd = 3,
};

std::string_view DeviceTypeName(DeviceType t);

// Identifies one paravirtual device instance.
struct DeviceId {
  DomId dom = kDomInvalid;
  DeviceType type = DeviceType::kVif;
  int devid = 0;

  friend bool operator<(const DeviceId& a, const DeviceId& b) {
    if (a.dom != b.dom) {
      return a.dom < b.dom;
    }
    if (a.type != b.type) {
      return a.type < b.type;
    }
    return a.devid < b.devid;
  }
  friend bool operator==(const DeviceId& a, const DeviceId& b) {
    return a.dom == b.dom && a.type == b.type && a.devid == b.devid;
  }
};

// udev event emitted by a backend when it creates/destroys a host-side
// interface; handled in userspace by the toolstack hotplug logic on boot and
// by xencloned on clone (Sec. 5, step 2.3).
struct UdevEvent {
  enum class Kind { kAdd, kRemove } kind = Kind::kAdd;
  DeviceId device;
  std::string interface_name;  // e.g. "vif3.0"
};

}  // namespace nephele

#endif  // SRC_DEVICES_XENBUS_H_
