#include "src/devices/device_manager.h"

namespace nephele {

DeviceManager::DeviceManager(Hypervisor& hv, XenstoreDaemon& xs, EventLoop& loop,
                             const CostModel& costs, FaultInjector* faults)
    : hv_(hv),
      xs_(xs),
      loop_(loop),
      costs_(costs),
      console_(loop, costs),
      netback_(hv, loop, costs),
      p9_(loop, costs, hostfs_),
      vbd_(loop, costs) {
  netback_.set_udev_emitter([this](const UdevEvent& event) { DispatchUdev(event); });
  if (faults != nullptr) {
    console_.SetCloneFaultPoint(faults->GetPoint("devices/console_clone"));
    netback_.SetCloneFaultPoint(faults->GetPoint("devices/net_clone"));
    p9_.SetCloneFaultPoint(faults->GetPoint("devices/p9_clone"));
    vbd_.SetCloneFaultPoint(faults->GetPoint("devices/vbd_clone"));
  }
}

void DeviceManager::DispatchUdev(const UdevEvent& event) {
  // Kernel -> userspace netlink delivery; the handler runs one event later.
  loop_.Post(SimDuration::Micros(150), [this, event] {
    if (udev_handler_) {
      udev_handler_(event);
    }
  });
}

}  // namespace nephele
