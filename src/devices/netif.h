// Network split driver: NetFrontend (guest side) and NetBackend with its
// per-device Vif state (Dom0 side, the netback analogue). Vifs are
// SwitchPorts so Dom0 switching (bridge/bond/OVS) can aggregate them.
//
// Clone behaviour (Sec. 4.2 / 5.2.1): both TX and RX rings are COPIED for
// the child (pending requests must be serviced on both sides; RX slots are
// guest-preallocated and carry allocator metadata), the negotiation is
// skipped, and the child vif is born Connected with the SAME MAC and IP as
// the parent.

#ifndef SRC_DEVICES_NETIF_H_
#define SRC_DEVICES_NETIF_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/base/result.h"
#include "src/devices/ring.h"
#include "src/devices/xenbus.h"
#include "src/hypervisor/hypervisor.h"
#include "src/net/packet.h"
#include "src/net/switch.h"

namespace nephele {

class NetBackend;

// Guest-resident netfront instance. The guest network stack registers a
// receive handler and transmits through Send().
class NetFrontend {
 public:
  // Guest pages backing the device (out of the guest's own allocation, as on
  // real Xen). 256 RX buffer pages = the "1 MB ... RX network ring alone"
  // of Sec. 6.2.
  static constexpr std::size_t kRxBufferPages = 256;
  static constexpr std::size_t kTxBufferPages = 96;

  NetFrontend(Hypervisor& hv, DomId dom, int devid, MacAddr mac, Ipv4Addr ip);

  // Boot path: allocates ring + buffer pages from guest memory and grants
  // them to the backend domain.
  Status AllocateRings();

  // Clone path: mirrors the parent's layout for the child domain. The
  // child's p2m already contains private duplicates at the same gfns (clone
  // first stage), so only the bookkeeping is rebuilt.
  Status AdoptLayoutFrom(const NetFrontend& parent);

  Status Send(const Packet& packet);

  using ReceiveHandler = std::function<void(const Packet&)>;
  void set_receive_handler(ReceiveHandler handler) { on_receive_ = std::move(handler); }

  void set_backend(NetBackend* backend) { backend_ = backend; }
  void MarkConnected() { connected_ = true; }
  bool connected() const { return connected_; }

  DomId dom() const { return dom_; }
  int devid() const { return devid_; }
  MacAddr mac() const { return mac_; }
  Ipv4Addr ip() const { return ip_; }

  SharedRing<Packet>& tx_ring() { return tx_ring_; }
  SharedRing<Packet>& rx_ring() { return rx_ring_; }
  Gfn tx_ring_gfn() const { return tx_ring_gfn_; }
  Gfn rx_ring_gfn() const { return rx_ring_gfn_; }
  Gfn rx_buffer_gfn() const { return rx_buffer_gfn_; }
  Gfn tx_buffer_gfn() const { return tx_buffer_gfn_; }

  // Backend-facing: pulls received packets out of the RX ring into the
  // guest stack.
  void DrainRx();

 private:
  friend class NetBackend;

  Hypervisor& hv_;
  DomId dom_;
  int devid_;
  MacAddr mac_;
  Ipv4Addr ip_;
  bool connected_ = false;
  NetBackend* backend_ = nullptr;
  ReceiveHandler on_receive_;

  SharedRing<Packet> tx_ring_{256};
  SharedRing<Packet> rx_ring_{256};
  Gfn tx_ring_gfn_ = kInvalidGfn;
  Gfn rx_ring_gfn_ = kInvalidGfn;
  Gfn rx_buffer_gfn_ = kInvalidGfn;
  Gfn tx_buffer_gfn_ = kInvalidGfn;
};

// Dom0-side per-device state; attachable to a HostSwitch.
class Vif : public SwitchPort {
 public:
  Vif(NetBackend& owner, DeviceId id, NetFrontend* frontend);

  void DeliverToGuest(const Packet& packet) override;
  MacAddr mac() const override;
  Ipv4Addr ip() const override;
  std::string port_name() const override { return name_; }

  const DeviceId& id() const { return id_; }
  XenbusState state() const { return state_; }
  void set_state(XenbusState s) { state_ = s; }
  NetFrontend* frontend() { return frontend_; }
  HostSwitch* attached_switch() const { return attached_; }
  void set_attached_switch(HostSwitch* sw) { attached_ = sw; }

 private:
  NetBackend& owner_;
  DeviceId id_;
  std::string name_;
  NetFrontend* frontend_;
  XenbusState state_ = XenbusState::kInitialising;
  HostSwitch* attached_ = nullptr;
};

class NetBackend {
 public:
  NetBackend(Hypervisor& hv, EventLoop& loop, const CostModel& costs)
      : hv_(hv), loop_(loop), costs_(costs) {}

  using UdevEmitter = std::function<void(const UdevEvent&)>;
  void set_udev_emitter(UdevEmitter emitter) { udev_ = std::move(emitter); }

  // Boot path: called once the frontend reached Initialised; maps rings,
  // creates the host interface (emitting a udev add event) and moves the
  // device to Connected.
  Result<Vif*> ConnectDevice(DeviceId id, NetFrontend* frontend);

  // Clone path: the Sec. 5.2.1 shortcut — creates the child vif directly in
  // Connected state and copies both rings from the parent device.
  Result<Vif*> CloneDevice(const DeviceId& parent, const DeviceId& child,
                           NetFrontend* child_frontend);

  // Fault point poked at the top of CloneDevice (null = never fires).
  void SetCloneFaultPoint(FaultPoint* point) { f_clone_ = point; }

  Status DestroyDevice(const DeviceId& id);

  Vif* FindVif(const DeviceId& id);
  std::size_t num_vifs() const { return vifs_.size(); }

  // Datapath entry from the frontend TX notify.
  void ProcessTx(NetFrontend* frontend);

  // Dom0 resident memory per vif (netback structs, Fig. 5 accounting).
  static constexpr std::size_t kDom0BytesPerVif = 64 * 1024;
  std::size_t Dom0Bytes() const { return vifs_.size() * kDom0BytesPerVif; }

  std::uint64_t packets_forwarded() const { return packets_forwarded_; }

 private:
  friend class Vif;

  Hypervisor& hv_;
  EventLoop& loop_;
  const CostModel& costs_;
  FaultPoint* f_clone_ = nullptr;
  UdevEmitter udev_;
  std::map<DeviceId, std::unique_ptr<Vif>> vifs_;
  std::uint64_t packets_forwarded_ = 0;
};

}  // namespace nephele

#endif  // SRC_DEVICES_NETIF_H_
