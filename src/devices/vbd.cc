#include "src/devices/vbd.h"

#include <cassert>
#include <cstring>

#include "src/base/units.h"

namespace nephele {

// ---------------------------------------------------------------------------
// BlockStore
// ---------------------------------------------------------------------------

BlockId BlockStore::AllocZero() {
  BlockId id = next_id_++;
  blocks_[id] = Block{1, {}};
  return id;
}

void BlockStore::Ref(BlockId id) {
  auto it = blocks_.find(id);
  assert(it != blocks_.end());
  ++it->second.refcount;
}

void BlockStore::Unref(BlockId id) {
  auto it = blocks_.find(id);
  assert(it != blocks_.end());
  if (--it->second.refcount == 0) {
    blocks_.erase(it);
  }
}

BlockId BlockStore::ResolveCowWrite(BlockId id) {
  auto it = blocks_.find(id);
  assert(it != blocks_.end());
  if (it->second.refcount == 1) {
    return id;  // sole owner writes in place
  }
  BlockId copy = AllocZero();
  blocks_[copy].data = it->second.data;
  --it->second.refcount;
  return copy;
}

void BlockStore::WriteBytes(BlockId id, std::size_t offset, const std::uint8_t* src,
                            std::size_t len) {
  Block& b = blocks_[id];
  if (b.data.empty()) {
    b.data.resize(kVbdBlockSize, 0);
  }
  std::memcpy(b.data.data() + offset, src, len);
}

void BlockStore::ReadBytes(BlockId id, std::size_t offset, std::uint8_t* out,
                           std::size_t len) const {
  auto it = blocks_.find(id);
  if (it == blocks_.end() || it->second.data.empty()) {
    std::memset(out, 0, len);
    return;
  }
  std::memcpy(out, it->second.data.data() + offset, len);
}

std::uint32_t BlockStore::RefCount(BlockId id) const {
  auto it = blocks_.find(id);
  return it == blocks_.end() ? 0 : it->second.refcount;
}

std::size_t BlockStore::MaterialisedBytes() const {
  std::size_t n = 0;
  for (const auto& [id, b] : blocks_) {
    n += b.data.size();
  }
  return n;
}

// ---------------------------------------------------------------------------
// VbdBackend
// ---------------------------------------------------------------------------

Result<VbdDisk*> VbdBackend::FindDisk(const DeviceId& id) {
  auto it = disks_.find(id);
  if (it == disks_.end()) {
    return ErrNotFound("no such disk");
  }
  return &it->second;
}

Status VbdBackend::CreateDisk(const DeviceId& id, std::size_t size_mb) {
  if (disks_.contains(id)) {
    return ErrAlreadyExists("disk exists");
  }
  VbdDisk disk;
  std::size_t blocks = size_mb * kMiB / kVbdBlockSize;
  disk.table.reserve(blocks);
  for (std::size_t i = 0; i < blocks; ++i) {
    disk.table.push_back(store_.AllocZero());
  }
  disk.state = XenbusState::kConnected;
  loop_.AdvanceBy(SimDuration::Millis(2));  // backend probe + image open
  disks_[id] = std::move(disk);
  return Status::Ok();
}

Status VbdBackend::CloneDisk(const DeviceId& parent, const DeviceId& child) {
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_clone_));
  NEPHELE_ASSIGN_OR_RETURN(VbdDisk * p, FindDisk(parent));
  if (disks_.contains(child)) {
    return ErrAlreadyExists("child disk exists");
  }
  VbdDisk c;
  c.table = p->table;
  for (BlockId b : c.table) {
    store_.Ref(b);
  }
  c.state = XenbusState::kConnected;  // negotiation skipped, like the vif path
  loop_.AdvanceBy(costs_.vbd_clone_fixed +
                  costs_.vbd_block_ref * static_cast<double>(c.table.size()));
  disks_[child] = std::move(c);
  return Status::Ok();
}

Status VbdBackend::DestroyDisk(const DeviceId& id) {
  NEPHELE_ASSIGN_OR_RETURN(VbdDisk * d, FindDisk(id));
  for (BlockId b : d->table) {
    store_.Unref(b);
  }
  disks_.erase(id);
  return Status::Ok();
}

Status VbdBackend::Read(const DeviceId& id, std::size_t offset, std::uint8_t* out,
                        std::size_t len) {
  NEPHELE_ASSIGN_OR_RETURN(VbdDisk * d, FindDisk(id));
  if (offset + len > d->size_bytes()) {
    return ErrOutOfRange("read past end of disk");
  }
  loop_.AdvanceBy(costs_.vbd_request + costs_.VbdTransferCost(len));
  while (len > 0) {
    std::size_t block = offset / kVbdBlockSize;
    std::size_t in_block = offset % kVbdBlockSize;
    std::size_t chunk = std::min(len, kVbdBlockSize - in_block);
    store_.ReadBytes(d->table[block], in_block, out, chunk);
    out += chunk;
    offset += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

Status VbdBackend::Write(const DeviceId& id, std::size_t offset, const std::uint8_t* src,
                         std::size_t len) {
  NEPHELE_ASSIGN_OR_RETURN(VbdDisk * d, FindDisk(id));
  if (offset + len > d->size_bytes()) {
    return ErrOutOfRange("write past end of disk");
  }
  loop_.AdvanceBy(costs_.vbd_request + costs_.VbdTransferCost(len));
  while (len > 0) {
    std::size_t block = offset / kVbdBlockSize;
    std::size_t in_block = offset % kVbdBlockSize;
    std::size_t chunk = std::min(len, kVbdBlockSize - in_block);
    BlockId target = store_.ResolveCowWrite(d->table[block]);
    if (target != d->table[block]) {
      loop_.AdvanceBy(costs_.vbd_block_cow);
      d->table[block] = target;
    }
    store_.WriteBytes(target, in_block, src, chunk);
    src += chunk;
    offset += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

Result<std::size_t> VbdBackend::DiskSize(const DeviceId& id) const {
  auto it = disks_.find(id);
  if (it == disks_.end()) {
    return ErrNotFound("no such disk");
  }
  return it->second.size_bytes();
}

std::size_t VbdBackend::PrivateBlocks(const DeviceId& id) const {
  auto it = disks_.find(id);
  if (it == disks_.end()) {
    return 0;
  }
  std::size_t n = 0;
  for (BlockId b : it->second.table) {
    if (store_.RefCount(b) == 1) {
      ++n;
    }
  }
  return n;
}

// ---------------------------------------------------------------------------
// VbdFrontend
// ---------------------------------------------------------------------------

Result<std::vector<std::uint8_t>> VbdFrontend::Read(std::size_t offset, std::size_t len) {
  std::vector<std::uint8_t> out(len);
  NEPHELE_RETURN_IF_ERROR(backend_->Read(id_, offset, out.data(), len));
  return out;
}

Status VbdFrontend::Write(std::size_t offset, const std::vector<std::uint8_t>& data) {
  return backend_->Write(id_, offset, data.data(), data.size());
}

}  // namespace nephele
