// Virtual block device (vbd) split driver — an exercise of the paper's
// Sec. 5.3 extension point: "Supporting new device types requires changes
// only in the implementations of xencloned and of their backend drivers."
//
// The backend stores disks as tables of reference-counted blocks in a
// BlockStore, so cloning a disk is the storage twin of memory cloning: the
// child's table references the parent's blocks, writes on either side break
// the sharing block-by-block (COW), and density scales with divergence
// rather than disk size.

#ifndef SRC_DEVICES_VBD_H_
#define SRC_DEVICES_VBD_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/base/result.h"
#include "src/devices/ring.h"
#include "src/devices/xenbus.h"
#include "src/fault/fault.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_loop.h"

namespace nephele {

using BlockId = std::uint32_t;
inline constexpr BlockId kInvalidBlock = 0xffffffffu;
inline constexpr std::size_t kVbdBlockSize = 4096;

// Reference-counted content store backing every disk (the storage analogue
// of the machine frame table).
class BlockStore {
 public:
  // Allocates an all-zero block with refcount 1. Contents materialise
  // lazily on first write.
  BlockId AllocZero();

  void Ref(BlockId id);
  void Unref(BlockId id);

  // Write path with COW: returns the block to write to — `id` itself when
  // refcount == 1, otherwise a fresh copy (the caller re-points its table).
  BlockId ResolveCowWrite(BlockId id);

  void WriteBytes(BlockId id, std::size_t offset, const std::uint8_t* src, std::size_t len);
  void ReadBytes(BlockId id, std::size_t offset, std::uint8_t* out, std::size_t len) const;

  std::uint32_t RefCount(BlockId id) const;
  std::size_t live_blocks() const { return blocks_.size(); }
  // Bytes the store would occupy on the host (deduplicated).
  std::size_t MaterialisedBytes() const;

 private:
  struct Block {
    std::uint32_t refcount = 0;
    std::vector<std::uint8_t> data;  // empty until written (all zeroes)
  };

  std::map<BlockId, Block> blocks_;
  BlockId next_id_ = 1;
};

// One guest-visible virtual disk.
struct VbdDisk {
  std::vector<BlockId> table;  // block index -> store block
  XenbusState state = XenbusState::kInitialising;

  std::size_t size_bytes() const { return table.size() * kVbdBlockSize; }
};

class VbdBackend {
 public:
  VbdBackend(EventLoop& loop, const CostModel& costs) : loop_(loop), costs_(costs) {}

  // Boot path: creates a zero-filled disk of `size_mb` and connects it.
  Status CreateDisk(const DeviceId& id, std::size_t size_mb);

  // Clone path (xencloned): the child disk snapshots the parent's — block
  // table copied, every block reference-counted; both sides COW from here.
  Status CloneDisk(const DeviceId& parent, const DeviceId& child);

  // Fault point poked at the top of CloneDisk (null = never fires).
  void SetCloneFaultPoint(FaultPoint* point) { f_clone_ = point; }

  Status DestroyDisk(const DeviceId& id);

  // Datapath (frontend requests).
  Status Read(const DeviceId& id, std::size_t offset, std::uint8_t* out, std::size_t len);
  Status Write(const DeviceId& id, std::size_t offset, const std::uint8_t* src, std::size_t len);

  Result<std::size_t> DiskSize(const DeviceId& id) const;
  bool HasDisk(const DeviceId& id) const { return disks_.contains(id); }
  // Blocks privately owned by this disk (refcount-1 share accounting).
  std::size_t PrivateBlocks(const DeviceId& id) const;

  BlockStore& store() { return store_; }
  static constexpr std::size_t kDom0BytesPerDisk = 48 * 1024;
  std::size_t Dom0Bytes() const { return disks_.size() * kDom0BytesPerDisk; }

 private:
  Result<VbdDisk*> FindDisk(const DeviceId& id);

  EventLoop& loop_;
  const CostModel& costs_;
  BlockStore store_;
  FaultPoint* f_clone_ = nullptr;
  std::map<DeviceId, VbdDisk> disks_;
};

// Guest-side blkfront: byte-addressed convenience API over the backend, with
// a request ring for realism (pending requests survive cloning like vif's).
class VbdFrontend {
 public:
  VbdFrontend(VbdBackend& backend, DeviceId id) : backend_(&backend), id_(id) {}

  Result<std::vector<std::uint8_t>> Read(std::size_t offset, std::size_t len);
  Status Write(std::size_t offset, const std::vector<std::uint8_t>& data);
  Result<std::size_t> Size() const { return backend_->DiskSize(id_); }

  // Clone support: same layout, child device id.
  void RebindToDevice(DeviceId id) { id_ = id; }
  const DeviceId& device() const { return id_; }

 private:
  VbdBackend* backend_;
  DeviceId id_;
};

}  // namespace nephele

#endif  // SRC_DEVICES_VBD_H_
