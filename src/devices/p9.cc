#include "src/devices/p9.h"

#include <string_view>

namespace nephele {

namespace {
// Resident memory of a QEMU 9pfs backend process and of one fid entry.
constexpr std::size_t kDom0BytesPerProcess = 9 * 1024 * 1024;
constexpr std::size_t kDom0BytesPerFid = 256;

// Rejects walk/create path components that would escape the export root
// (".." — a hostile guest steering its fid above export_root_) or that name
// the directory itself ("."): the real 9p server resolves each component
// against the export and refuses both.
Status ValidatePathComponents(const std::string& path) {
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t slash = path.find('/', start);
    std::size_t end = slash == std::string::npos ? path.size() : slash;
    std::string_view comp(path.data() + start, end - start);
    if (comp == "..") {
      return ErrPermissionDenied("9p path escapes export root");
    }
    if (comp == ".") {
      return ErrInvalidArgument("9p path component '.' not allowed");
    }
    if (slash == std::string::npos) {
      break;
    }
    start = slash + 1;
  }
  return Status::Ok();
}
}  // namespace

P9BackendProcess::P9BackendProcess(EventLoop& loop, const CostModel& costs, HostFs& fs,
                                   std::string export_root)
    : loop_(loop), costs_(costs), fs_(fs), export_root_(std::move(export_root)) {}

std::string P9BackendProcess::HostPath(const std::string& rel) const {
  if (rel.empty() || rel == "/") {
    return export_root_;
  }
  if (rel.front() == '/') {
    return export_root_ + rel;
  }
  return export_root_ + "/" + rel;
}

Result<P9Fid*> P9BackendProcess::FindFid(DomId dom, std::uint32_t fid) {
  auto dit = tables_.find(dom);
  if (dit == tables_.end()) {
    return ErrNotFound("domain not attached");
  }
  auto fit = dit->second.fids.find(fid);
  if (fit == dit->second.fids.end()) {
    return ErrNotFound("bad fid");
  }
  return &fit->second;
}

Result<std::uint32_t> P9BackendProcess::Attach(DomId dom) {
  loop_.AdvanceBy(costs_.p9_rpc);
  FidTable& t = tables_[dom];  // creates on first attach
  std::uint32_t fid = t.next_fid++;
  t.fids[fid] = P9Fid{fid, "/", /*open=*/false, /*writable=*/false};
  return fid;
}

Result<std::uint32_t> P9BackendProcess::Walk(DomId dom, std::uint32_t dir_fid,
                                             const std::string& path) {
  loop_.AdvanceBy(costs_.p9_rpc);
  NEPHELE_ASSIGN_OR_RETURN(P9Fid * dir, FindFid(dom, dir_fid));
  NEPHELE_RETURN_IF_ERROR(ValidatePathComponents(path));
  std::string rel = dir->path == "/" ? "/" + path : dir->path + "/" + path;
  FidTable& t = tables_[dom];
  std::uint32_t fid = t.next_fid++;
  t.fids[fid] = P9Fid{fid, rel, /*open=*/false, /*writable=*/false};
  return fid;
}

Status P9BackendProcess::Open(DomId dom, std::uint32_t fid, bool writable) {
  loop_.AdvanceBy(costs_.p9_rpc);
  NEPHELE_ASSIGN_OR_RETURN(P9Fid * f, FindFid(dom, fid));
  if (!fs_.Exists(HostPath(f->path))) {
    return ErrNotFound(f->path);
  }
  f->open = true;
  f->writable = writable;
  return Status::Ok();
}

Result<std::uint32_t> P9BackendProcess::Create(DomId dom, std::uint32_t dir_fid,
                                               const std::string& name) {
  loop_.AdvanceBy(costs_.p9_rpc);
  NEPHELE_ASSIGN_OR_RETURN(P9Fid * dir, FindFid(dom, dir_fid));
  if (name.find('/') != std::string::npos) {
    return ErrInvalidArgument("9p create name must not contain '/'");
  }
  NEPHELE_RETURN_IF_ERROR(ValidatePathComponents(name));
  std::string rel = dir->path == "/" ? "/" + name : dir->path + "/" + name;
  std::string host = HostPath(rel);
  if (!fs_.Exists(host)) {
    NEPHELE_RETURN_IF_ERROR(fs_.CreateFile(host));
  } else {
    NEPHELE_RETURN_IF_ERROR(fs_.Truncate(host, 0));
  }
  FidTable& t = tables_[dom];
  std::uint32_t fid = t.next_fid++;
  t.fids[fid] = P9Fid{fid, rel, /*open=*/true, /*writable=*/true};
  return fid;
}

Result<std::vector<std::uint8_t>> P9BackendProcess::Read(DomId dom, std::uint32_t fid,
                                                         std::size_t offset, std::size_t count) {
  loop_.AdvanceBy(costs_.p9_rpc);
  NEPHELE_ASSIGN_OR_RETURN(P9Fid * f, FindFid(dom, fid));
  if (!f->open) {
    return ErrFailedPrecondition("fid not open");
  }
  NEPHELE_ASSIGN_OR_RETURN(auto data, fs_.ReadAt(HostPath(f->path), offset, count));
  loop_.AdvanceBy(costs_.P9TransferCost(data.size()));
  return data;
}

Result<std::size_t> P9BackendProcess::Write(DomId dom, std::uint32_t fid, std::size_t offset,
                                            const std::vector<std::uint8_t>& data) {
  loop_.AdvanceBy(costs_.p9_rpc);
  NEPHELE_ASSIGN_OR_RETURN(P9Fid * f, FindFid(dom, fid));
  if (!f->open || !f->writable) {
    return ErrFailedPrecondition("fid not open for writing");
  }
  NEPHELE_RETURN_IF_ERROR(fs_.WriteAt(HostPath(f->path), offset, data));
  loop_.AdvanceBy(costs_.P9TransferCost(data.size()));
  return data.size();
}

Status P9BackendProcess::Clunk(DomId dom, std::uint32_t fid) {
  loop_.AdvanceBy(costs_.p9_rpc);
  auto dit = tables_.find(dom);
  if (dit == tables_.end() || dit->second.fids.erase(fid) == 0) {
    return ErrNotFound("bad fid");
  }
  return Status::Ok();
}

Result<std::size_t> P9BackendProcess::StatSize(DomId dom, std::uint32_t fid) {
  loop_.AdvanceBy(costs_.p9_rpc);
  NEPHELE_ASSIGN_OR_RETURN(P9Fid * f, FindFid(dom, fid));
  return fs_.SizeOf(HostPath(f->path));
}

Result<std::vector<std::string>> P9BackendProcess::ReadDir(DomId dom, std::uint32_t dir_fid) {
  loop_.AdvanceBy(costs_.p9_rpc);
  NEPHELE_ASSIGN_OR_RETURN(P9Fid * dir, FindFid(dom, dir_fid));
  std::string prefix = HostPath(dir->path);
  if (prefix.back() != '/') {
    prefix += '/';
  }
  std::vector<std::string> names;
  for (const std::string& path : fs_.List(prefix)) {
    std::string rest = path.substr(prefix.size());
    std::size_t slash = rest.find('/');
    std::string name = slash == std::string::npos ? rest : rest.substr(0, slash);
    if (!name.empty() && (names.empty() || names.back() != name)) {
      names.push_back(name);
    }
  }
  return names;
}

Status P9BackendProcess::QmpCloneFids(DomId parent, DomId child) {
  loop_.AdvanceBy(costs_.qmp_roundtrip);
  auto pit = tables_.find(parent);
  if (pit == tables_.end()) {
    return ErrNotFound("parent not attached");
  }
  if (tables_.contains(child)) {
    return ErrAlreadyExists("child already attached");
  }
  FidTable child_table = pit->second;  // duplicate every fid (same host files)
  loop_.AdvanceBy(costs_.p9_fid_clone * static_cast<double>(child_table.fids.size()));
  tables_[child] = std::move(child_table);
  return Status::Ok();
}

Status P9BackendProcess::ReleaseDomain(DomId dom) {
  if (tables_.erase(dom) == 0) {
    return ErrNotFound("domain not attached");
  }
  return Status::Ok();
}

std::size_t P9BackendProcess::NumFids(DomId dom) const {
  auto it = tables_.find(dom);
  return it == tables_.end() ? 0 : it->second.fids.size();
}

std::size_t P9BackendProcess::Dom0Bytes() const {
  std::size_t fids = 0;
  for (const auto& [dom, table] : tables_) {
    fids += table.fids.size();
  }
  return kDom0BytesPerProcess + fids * kDom0BytesPerFid;
}

Result<P9BackendProcess*> P9BackendRegistry::LaunchForDomain(DomId dom,
                                                             const std::string& export_root) {
  if (FindServing(dom) != nullptr) {
    return ErrAlreadyExists("domain already served");
  }
  // Process spawn + export setup.
  loop_.AdvanceBy(SimDuration::Millis(4));
  auto proc = std::make_unique<P9BackendProcess>(loop_, costs_, fs_, export_root);
  P9BackendProcess* raw = proc.get();
  processes_.push_back(std::move(proc));
  return raw->Attach(dom).ok() ? Result<P9BackendProcess*>(raw)
                               : Result<P9BackendProcess*>(ErrInternal("attach failed"));
}

Status P9BackendRegistry::CloneForChild(DomId parent, DomId child) {
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_clone_));
  P9BackendProcess* proc = FindServing(parent);
  if (proc == nullptr) {
    return ErrNotFound("no backend serves parent");
  }
  return proc->QmpCloneFids(parent, child);
}

P9BackendProcess* P9BackendRegistry::FindServing(DomId dom) {
  for (auto& p : processes_) {
    if (p->ServesDomain(dom)) {
      return p.get();
    }
  }
  return nullptr;
}

std::size_t P9BackendRegistry::Dom0Bytes() const {
  std::size_t n = 0;
  for (const auto& p : processes_) {
    n += p->Dom0Bytes();
  }
  return n;
}

}  // namespace nephele
