// Console split device. The backend plays the role of the QEMU console
// process in Dom0: it drains guest output rings into per-domain logs. On
// clone the ring is NOT copied — duplicating the parent's console output in
// the child would hinder debugging (Sec. 4.2).

#ifndef SRC_DEVICES_CONSOLE_H_
#define SRC_DEVICES_CONSOLE_H_

#include <map>
#include <string>

#include "src/base/result.h"
#include "src/devices/ring.h"
#include "src/fault/fault.h"
#include "src/devices/xenbus.h"
#include "src/hypervisor/types.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_loop.h"

namespace nephele {

class ConsoleBackend {
 public:
  ConsoleBackend(EventLoop& loop, const CostModel& costs) : loop_(loop), costs_(costs) {}

  // Boot path: creates the console state for a new domain.
  Status CreateConsole(DomId dom, Gfn ring_gfn);

  // Clone path: the child console starts with an EMPTY ring; only the
  // backend bookkeeping is created. No QEMU code changes were needed in the
  // paper — Xenstore watch delivery triggers this.
  Status CloneConsole(DomId parent, DomId child, Gfn child_ring_gfn);

  // Fault point poked at the top of CloneConsole (null = never fires).
  void SetCloneFaultPoint(FaultPoint* point) { f_clone_ = point; }

  Status DestroyConsole(DomId dom);

  // Guest side: writes bytes through the ring; backend drains immediately.
  Status GuestWrite(DomId dom, const std::string& text);

  // Accumulated output per domain (what `xl console` would show).
  Result<std::string> Output(DomId dom) const;
  bool HasConsole(DomId dom) const { return consoles_.contains(dom); }

  // Dom0-side resident memory attributable to one console (Fig. 5 accounting).
  static constexpr std::size_t kDom0BytesPerConsole = 24 * 1024;
  std::size_t Dom0Bytes() const { return consoles_.size() * kDom0BytesPerConsole; }

 private:
  struct ConsoleState {
    SharedRing<char> ring{4096};
    std::string output;
  };

  EventLoop& loop_;
  const CostModel& costs_;
  FaultPoint* f_clone_ = nullptr;
  std::map<DomId, ConsoleState> consoles_;
};

}  // namespace nephele

#endif  // SRC_DEVICES_CONSOLE_H_
