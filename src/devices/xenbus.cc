#include "src/devices/xenbus.h"

namespace nephele {

std::string_view XenbusStateName(XenbusState s) {
  switch (s) {
    case XenbusState::kUnknown:
      return "Unknown";
    case XenbusState::kInitialising:
      return "Initialising";
    case XenbusState::kInitWait:
      return "InitWait";
    case XenbusState::kInitialised:
      return "Initialised";
    case XenbusState::kConnected:
      return "Connected";
    case XenbusState::kClosing:
      return "Closing";
    case XenbusState::kClosed:
      return "Closed";
  }
  return "Unknown";
}

std::string_view DeviceTypeName(DeviceType t) {
  switch (t) {
    case DeviceType::kConsole:
      return "console";
    case DeviceType::kVif:
      return "vif";
    case DeviceType::kP9fs:
      return "9pfs";
    case DeviceType::kVbd:
      return "vbd";
  }
  return "unknown";
}

}  // namespace nephele
