#include "src/devices/netif.h"

#include "src/base/log.h"

namespace nephele {

// ---------------------------------------------------------------------------
// NetFrontend
// ---------------------------------------------------------------------------

NetFrontend::NetFrontend(Hypervisor& hv, DomId dom, int devid, MacAddr mac, Ipv4Addr ip)
    : hv_(hv), dom_(dom), devid_(devid), mac_(mac), ip_(ip) {}

Status NetFrontend::AllocateRings() {
  NEPHELE_ASSIGN_OR_RETURN(tx_ring_gfn_, hv_.PopulatePhysmap(dom_, 1, PageRole::kIoRing));
  NEPHELE_ASSIGN_OR_RETURN(rx_ring_gfn_, hv_.PopulatePhysmap(dom_, 1, PageRole::kIoRing));
  NEPHELE_ASSIGN_OR_RETURN(rx_buffer_gfn_,
                           hv_.PopulatePhysmap(dom_, kRxBufferPages, PageRole::kIoBuffer));
  NEPHELE_ASSIGN_OR_RETURN(tx_buffer_gfn_,
                           hv_.PopulatePhysmap(dom_, kTxBufferPages, PageRole::kIoBuffer));
  tx_ring_.AttachFrame(tx_ring_gfn_);
  rx_ring_.AttachFrame(rx_ring_gfn_);
  // Grant the whole region to the backend domain; one batched hypercall.
  hv_.ChargeHypercall();
  NEPHELE_RETURN_IF_ERROR(hv_.GrantAccess(dom_, kDom0, tx_ring_gfn_, false).status());
  NEPHELE_RETURN_IF_ERROR(hv_.GrantAccess(dom_, kDom0, rx_ring_gfn_, false).status());
  for (std::size_t i = 0; i < kRxBufferPages; ++i) {
    NEPHELE_RETURN_IF_ERROR(
        hv_.GrantAccess(dom_, kDom0, rx_buffer_gfn_ + static_cast<Gfn>(i), false).status());
  }
  for (std::size_t i = 0; i < kTxBufferPages; ++i) {
    NEPHELE_RETURN_IF_ERROR(
        hv_.GrantAccess(dom_, kDom0, tx_buffer_gfn_ + static_cast<Gfn>(i), true).status());
  }
  return Status::Ok();
}

Status NetFrontend::AdoptLayoutFrom(const NetFrontend& parent) {
  // The clone first stage duplicated the parent's private I/O pages at the
  // same gfns in the child's p2m; grants were cloned with the grant table.
  tx_ring_gfn_ = parent.tx_ring_gfn_;
  rx_ring_gfn_ = parent.rx_ring_gfn_;
  rx_buffer_gfn_ = parent.rx_buffer_gfn_;
  tx_buffer_gfn_ = parent.tx_buffer_gfn_;
  tx_ring_.AttachFrame(tx_ring_gfn_);
  rx_ring_.AttachFrame(rx_ring_gfn_);
  return Status::Ok();
}

Status NetFrontend::Send(const Packet& packet) {
  if (!connected_ || backend_ == nullptr) {
    return ErrFailedPrecondition("netfront not connected");
  }
  NEPHELE_RETURN_IF_ERROR(tx_ring_.Push(packet));
  hv_.loop().AdvanceBy(hv_.costs().net_tx_packet);
  // TX notify: the backend drains asynchronously (one event later), so a
  // paused domain can legitimately hold pending TX entries — exactly the
  // state the ring-copy clone semantics exist for.
  NetBackend* backend = backend_;
  NetFrontend* self = this;
  hv_.loop().Post(SimDuration::Micros(3), [backend, self] { backend->ProcessTx(self); });
  return Status::Ok();
}

void NetFrontend::DrainRx() {
  while (!rx_ring_.empty()) {
    auto packet = rx_ring_.Pop();
    hv_.loop().AdvanceBy(hv_.costs().net_rx_packet);
    if (on_receive_) {
      on_receive_(*packet);
    }
  }
}

// ---------------------------------------------------------------------------
// Vif
// ---------------------------------------------------------------------------

Vif::Vif(NetBackend& owner, DeviceId id, NetFrontend* frontend)
    : owner_(owner),
      id_(id),
      name_("vif" + std::to_string(id.dom) + "." + std::to_string(id.devid)),
      frontend_(frontend) {}

void Vif::DeliverToGuest(const Packet& packet) {
  if (state_ != XenbusState::kConnected || frontend_ == nullptr) {
    return;  // drop, as netback does for unconnected vifs
  }
  if (!frontend_->rx_ring().Push(packet).ok()) {
    return;  // RX ring overflow: drop
  }
  owner_.loop_.AdvanceBy(owner_.costs_.net_rx_packet);
  // RX notify to the guest.
  NetFrontend* fe = frontend_;
  DomId dom = id_.dom;
  Hypervisor& hv = owner_.hv_;
  owner_.loop_.Post(SimDuration::Micros(3), [fe, dom, &hv] {
    const Domain* d = hv.FindDomain(dom);
    if (d == nullptr || d->IsPaused()) {
      return;  // packets stay pending in the RX ring (clone-relevant state)
    }
    fe->DrainRx();
  });
}

MacAddr Vif::mac() const { return frontend_ != nullptr ? frontend_->mac() : 0; }

Ipv4Addr Vif::ip() const { return frontend_ != nullptr ? frontend_->ip() : 0; }

// ---------------------------------------------------------------------------
// NetBackend
// ---------------------------------------------------------------------------

Result<Vif*> NetBackend::ConnectDevice(DeviceId id, NetFrontend* frontend) {
  if (vifs_.contains(id)) {
    return ErrAlreadyExists("vif exists");
  }
  auto vif = std::make_unique<Vif>(*this, id, frontend);
  Vif* raw = vif.get();
  vifs_.emplace(id, std::move(vif));
  raw->set_state(XenbusState::kConnected);
  frontend->set_backend(this);
  frontend->MarkConnected();
  if (udev_) {
    udev_(UdevEvent{UdevEvent::Kind::kAdd, id, raw->port_name()});
  }
  return raw;
}

Result<Vif*> NetBackend::CloneDevice(const DeviceId& parent, const DeviceId& child,
                                     NetFrontend* child_frontend) {
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_clone_));
  auto pit = vifs_.find(parent);
  if (pit == vifs_.end()) {
    return ErrNotFound("parent vif missing");
  }
  if (vifs_.contains(child)) {
    return ErrAlreadyExists("child vif exists");
  }
  loop_.AdvanceBy(costs_.netback_clone_fixed);
  auto vif = std::make_unique<Vif>(*this, child, child_frontend);
  Vif* raw = vif.get();
  vifs_.emplace(child, std::move(vif));
  // Shortcut: born Connected, negotiation skipped.
  raw->set_state(XenbusState::kConnected);
  child_frontend->set_backend(this);
  child_frontend->MarkConnected();
  // Ring contents are duplicated for network devices — both directions.
  NetFrontend* parent_fe = pit->second->frontend();
  if (parent_fe != nullptr) {
    child_frontend->tx_ring().CopyContentsFrom(parent_fe->tx_ring());
    child_frontend->rx_ring().CopyContentsFrom(parent_fe->rx_ring());
    loop_.AdvanceBy(costs_.page_copy * 2.0);  // the two ring pages
  }
  if (udev_) {
    udev_(UdevEvent{UdevEvent::Kind::kAdd, child, raw->port_name()});
  }
  return raw;
}

Status NetBackend::DestroyDevice(const DeviceId& id) {
  auto it = vifs_.find(id);
  if (it == vifs_.end()) {
    return ErrNotFound("no vif");
  }
  if (HostSwitch* sw = it->second->attached_switch(); sw != nullptr) {
    (void)sw->Detach(it->second.get());
  }
  if (udev_) {
    udev_(UdevEvent{UdevEvent::Kind::kRemove, id, it->second->port_name()});
  }
  vifs_.erase(it);
  return Status::Ok();
}

Vif* NetBackend::FindVif(const DeviceId& id) {
  auto it = vifs_.find(id);
  return it == vifs_.end() ? nullptr : it->second.get();
}

void NetBackend::ProcessTx(NetFrontend* frontend) {
  DeviceId id{frontend->dom(), DeviceType::kVif, frontend->devid()};
  Vif* vif = FindVif(id);
  if (vif == nullptr || vif->state() != XenbusState::kConnected) {
    return;
  }
  while (!frontend->tx_ring().empty()) {
    auto packet = frontend->tx_ring().Pop();
    loop_.AdvanceBy(costs_.net_tx_packet);
    ++packets_forwarded_;
    if (HostSwitch* sw = vif->attached_switch(); sw != nullptr) {
      sw->TransmitFromGuest(vif, *packet);
    }
  }
}

}  // namespace nephele
