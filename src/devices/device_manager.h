// DeviceManager: Dom0's collection of backend drivers plus the udev event
// channel from kernel backends to userspace. The toolstack (boot) and
// xencloned (clone) both consume udev events to finish device setup — e.g.
// attaching a fresh vif to the bridge/bond (Sec. 3, Sec. 5 step 2.3).

#ifndef SRC_DEVICES_DEVICE_MANAGER_H_
#define SRC_DEVICES_DEVICE_MANAGER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/devices/console.h"
#include "src/devices/hostfs.h"
#include "src/devices/netif.h"
#include "src/devices/p9.h"
#include "src/devices/vbd.h"
#include "src/hypervisor/hypervisor.h"
#include "src/xenstore/store.h"

namespace nephele {

class DeviceManager {
 public:
  // `faults` may be null — device clone fault points are then never armed.
  DeviceManager(Hypervisor& hv, XenstoreDaemon& xs, EventLoop& loop, const CostModel& costs,
                FaultInjector* faults = nullptr);

  ConsoleBackend& console() { return console_; }
  NetBackend& netback() { return netback_; }
  P9BackendRegistry& p9() { return p9_; }
  VbdBackend& vbd() { return vbd_; }
  HostFs& hostfs() { return hostfs_; }

  // The udev handler userspace registers (toolstack hotplug or xencloned).
  using UdevHandler = std::function<void(const UdevEvent&)>;
  void SetUdevHandler(UdevHandler handler) { udev_handler_ = std::move(handler); }

  // Total Dom0 resident memory attributable to device backends.
  std::size_t Dom0BackendBytes() const {
    return console_.Dom0Bytes() + netback_.Dom0Bytes() + p9_.Dom0Bytes() +
           vbd_.Dom0Bytes();
  }

 private:
  void DispatchUdev(const UdevEvent& event);

  Hypervisor& hv_;
  XenstoreDaemon& xs_;
  EventLoop& loop_;
  const CostModel& costs_;
  HostFs hostfs_;
  ConsoleBackend console_;
  NetBackend netback_;
  P9BackendRegistry p9_;
  VbdBackend vbd_;
  UdevHandler udev_handler_;
};

}  // namespace nephele

#endif  // SRC_DEVICES_DEVICE_MANAGER_H_
