#include "src/devices/hostfs.h"

namespace nephele {

Status HostFs::CreateFile(const std::string& path) {
  if (files_.contains(path)) {
    return ErrAlreadyExists(path);
  }
  files_[path] = {};
  return Status::Ok();
}

Status HostFs::WriteAt(const std::string& path, std::size_t offset,
                       const std::vector<std::uint8_t>& data) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return ErrNotFound(path);
  }
  auto& f = it->second;
  if (offset + data.size() > f.size()) {
    f.resize(offset + data.size());
  }
  std::copy(data.begin(), data.end(), f.begin() + static_cast<std::ptrdiff_t>(offset));
  return Status::Ok();
}

Result<std::vector<std::uint8_t>> HostFs::ReadAt(const std::string& path, std::size_t offset,
                                                 std::size_t count) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return ErrNotFound(path);
  }
  const auto& f = it->second;
  if (offset >= f.size()) {
    return std::vector<std::uint8_t>{};
  }
  std::size_t n = std::min(count, f.size() - offset);
  return std::vector<std::uint8_t>(f.begin() + static_cast<std::ptrdiff_t>(offset),
                                   f.begin() + static_cast<std::ptrdiff_t>(offset + n));
}

Result<std::size_t> HostFs::SizeOf(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return ErrNotFound(path);
  }
  return it->second.size();
}

Status HostFs::Truncate(const std::string& path, std::size_t size) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return ErrNotFound(path);
  }
  it->second.resize(size);
  return Status::Ok();
}

Status HostFs::Remove(const std::string& path) {
  if (files_.erase(path) == 0) {
    return ErrNotFound(path);
  }
  return Status::Ok();
}

Status HostFs::Rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) {
    return ErrNotFound(from);
  }
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::Ok();
}

std::vector<std::string> HostFs::List(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, data] : files_) {
    if (path.compare(0, prefix.size(), prefix) == 0) {
      out.push_back(path);
    }
  }
  return out;
}

std::size_t HostFs::TotalBytes() const {
  std::size_t n = 0;
  for (const auto& [path, data] : files_) {
    n += data.size();
  }
  return n;
}

}  // namespace nephele
