#include "src/devices/console.h"

namespace nephele {

Status ConsoleBackend::CreateConsole(DomId dom, Gfn ring_gfn) {
  if (consoles_.contains(dom)) {
    return ErrAlreadyExists("console exists");
  }
  ConsoleState state;
  state.ring.AttachFrame(ring_gfn);
  consoles_.emplace(dom, std::move(state));
  return Status::Ok();
}

Status ConsoleBackend::CloneConsole(DomId parent, DomId child, Gfn child_ring_gfn) {
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_clone_));
  if (!consoles_.contains(parent)) {
    return ErrNotFound("parent console missing");
  }
  if (consoles_.contains(child)) {
    return ErrAlreadyExists("child console exists");
  }
  ConsoleState state;  // fresh ring, empty output: deliberately not copied
  state.ring.AttachFrame(child_ring_gfn);
  consoles_.emplace(child, std::move(state));
  return Status::Ok();
}

Status ConsoleBackend::DestroyConsole(DomId dom) {
  if (consoles_.erase(dom) == 0) {
    return ErrNotFound("no console");
  }
  return Status::Ok();
}

Status ConsoleBackend::GuestWrite(DomId dom, const std::string& text) {
  auto it = consoles_.find(dom);
  if (it == consoles_.end()) {
    return ErrNotFound("no console");
  }
  for (char c : text) {
    // Backend drains eagerly, so the ring never backs up in practice.
    NEPHELE_RETURN_IF_ERROR(it->second.ring.Push(c));
    auto popped = it->second.ring.Pop();
    it->second.output.push_back(*popped);
  }
  loop_.AdvanceBy(SimDuration::Nanos(static_cast<std::int64_t>(text.size() * 20)));
  return Status::Ok();
}

Result<std::string> ConsoleBackend::Output(DomId dom) const {
  auto it = consoles_.find(dom);
  if (it == consoles_.end()) {
    return ErrNotFound("no console");
  }
  return it->second.output;
}

}  // namespace nephele
