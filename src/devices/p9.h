// 9pfs split device. Unlike netback (a kernel driver), the 9pfs backend is a
// QEMU *process* in Dom0 holding a table of open-file fids per guest
// (Sec. 5.2.1). Nephele's design decision — reproduced here — is that one
// backend process serves a whole clone family (launching one process per
// clone would bottleneck Dom0), and clone requests arrive over an extended
// QMP management channel.

#ifndef SRC_DEVICES_P9_H_
#define SRC_DEVICES_P9_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/devices/hostfs.h"
#include "src/fault/fault.h"
#include "src/hypervisor/types.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_loop.h"

namespace nephele {

// One open-file handle in the backend's table.
struct P9Fid {
  std::uint32_t fid = 0;
  std::string path;     // host path relative to the export root
  bool open = false;
  bool writable = false;
};

// The QEMU-like backend process serving one export for one clone family.
class P9BackendProcess {
 public:
  P9BackendProcess(EventLoop& loop, const CostModel& costs, HostFs& fs, std::string export_root);

  const std::string& export_root() const { return export_root_; }

  // --- 9p operations (each models one RPC over the shared ring). ---
  // Establishes the root fid for a guest.
  Result<std::uint32_t> Attach(DomId dom);
  // Derives a new fid for `path` (relative to the export root).
  Result<std::uint32_t> Walk(DomId dom, std::uint32_t dir_fid, const std::string& path);
  Status Open(DomId dom, std::uint32_t fid, bool writable);
  // Creates the file and opens its fid for writing.
  Result<std::uint32_t> Create(DomId dom, std::uint32_t dir_fid, const std::string& name);
  Result<std::vector<std::uint8_t>> Read(DomId dom, std::uint32_t fid, std::size_t offset,
                                         std::size_t count);
  Result<std::size_t> Write(DomId dom, std::uint32_t fid, std::size_t offset,
                            const std::vector<std::uint8_t>& data);
  Status Clunk(DomId dom, std::uint32_t fid);
  Result<std::size_t> StatSize(DomId dom, std::uint32_t fid);
  // Directory listing (Treaddir): entries directly under the fid's path.
  Result<std::vector<std::string>> ReadDir(DomId dom, std::uint32_t dir_fid);

  // --- QMP extension (Sec. 5.2.1): clones the parent's whole fid table for
  // the child inside this same process. ---
  Status QmpCloneFids(DomId parent, DomId child);

  Status ReleaseDomain(DomId dom);

  std::size_t NumFids(DomId dom) const;
  bool ServesDomain(DomId dom) const { return tables_.contains(dom); }

  // Dom0 resident memory attributable to this process (Fig. 5 accounting).
  std::size_t Dom0Bytes() const;

 private:
  struct FidTable {
    std::map<std::uint32_t, P9Fid> fids;
    std::uint32_t next_fid = 1;
  };

  Result<P9Fid*> FindFid(DomId dom, std::uint32_t fid);
  std::string HostPath(const std::string& rel) const;

  EventLoop& loop_;
  const CostModel& costs_;
  HostFs& fs_;
  std::string export_root_;
  std::map<DomId, FidTable> tables_;
};

// Launches and finds backend processes: one per (family, export).
class P9BackendRegistry {
 public:
  P9BackendRegistry(EventLoop& loop, const CostModel& costs, HostFs& fs)
      : loop_(loop), costs_(costs), fs_(fs) {}

  // Boot path: xl launches a backend process for the new guest.
  Result<P9BackendProcess*> LaunchForDomain(DomId dom, const std::string& export_root);

  // Clone path: xencloned sends a QMP clone request to the parent's process.
  Status CloneForChild(DomId parent, DomId child);

  // Fault point poked at the top of CloneForChild (null = never fires).
  void SetCloneFaultPoint(FaultPoint* point) { f_clone_ = point; }

  P9BackendProcess* FindServing(DomId dom);
  std::size_t NumProcesses() const { return processes_.size(); }
  std::size_t Dom0Bytes() const;

 private:
  EventLoop& loop_;
  const CostModel& costs_;
  HostFs& fs_;
  FaultPoint* f_clone_ = nullptr;
  std::vector<std::unique_ptr<P9BackendProcess>> processes_;
};

}  // namespace nephele

#endif  // SRC_DEVICES_P9_H_
