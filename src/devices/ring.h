// Shared I/O ring between a frontend and its backend. The classic Xen ring
// holds fixed-size request/response slots inside one granted page; we model
// the two directions as bounded queues attached to the guest frame that
// backs them, so clone-time copy-vs-share decisions (Sec. 4.2) are explicit
// and testable.

#ifndef SRC_DEVICES_RING_H_
#define SRC_DEVICES_RING_H_

#include <cstddef>
#include <deque>

#include "src/base/result.h"
#include "src/hypervisor/types.h"

namespace nephele {

template <typename Slot>
class SharedRing {
 public:
  explicit SharedRing(std::size_t capacity = 256) : capacity_(capacity) {}

  // Binds the ring to the guest frame that backs it.
  void AttachFrame(Gfn gfn) { ring_gfn_ = gfn; }
  Gfn ring_gfn() const { return ring_gfn_; }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }
  bool full() const { return slots_.size() >= capacity_; }

  Status Push(Slot slot) {
    if (full()) {
      return ErrUnavailable("ring full");
    }
    slots_.push_back(std::move(slot));
    ++total_pushed_;
    return Status::Ok();
  }

  Result<Slot> Pop() {
    if (slots_.empty()) {
      return ErrUnavailable("ring empty");
    }
    Slot s = std::move(slots_.front());
    slots_.pop_front();
    return s;
  }

  const Slot& Peek() const { return slots_.front(); }

  // Clone-time duplication: the child ring starts with the exact pending
  // contents of the parent (network devices; Sec. 4.2 "packets in the TX
  // ring are created based on some pending requests that need to be
  // serviced in both parent and child domains").
  void CopyContentsFrom(const SharedRing& other) {
    slots_ = other.slots_;
    capacity_ = other.capacity_;
  }

  void Clear() { slots_.clear(); }

  std::uint64_t total_pushed() const { return total_pushed_; }

 private:
  std::size_t capacity_;
  std::deque<Slot> slots_;
  Gfn ring_gfn_ = kInvalidGfn;
  std::uint64_t total_pushed_ = 0;
};

}  // namespace nephele

#endif  // SRC_DEVICES_RING_H_
