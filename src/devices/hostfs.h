// In-memory host filesystem standing in for the Dom0 ramdisk that backs the
// 9pfs shares (the paper stores the whole Dom0 root on a ramdisk to remove
// storage-medium noise, Sec. 6).

#ifndef SRC_DEVICES_HOSTFS_H_
#define SRC_DEVICES_HOSTFS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/result.h"

namespace nephele {

class HostFs {
 public:
  Status CreateFile(const std::string& path);
  bool Exists(const std::string& path) const { return files_.contains(path); }

  // Writes `data` at `offset`, extending the file as needed.
  Status WriteAt(const std::string& path, std::size_t offset,
                 const std::vector<std::uint8_t>& data);
  Result<std::vector<std::uint8_t>> ReadAt(const std::string& path, std::size_t offset,
                                           std::size_t count) const;
  Result<std::size_t> SizeOf(const std::string& path) const;
  Status Truncate(const std::string& path, std::size_t size);
  Status Remove(const std::string& path);
  Status Rename(const std::string& from, const std::string& to);

  // All paths under `prefix`.
  std::vector<std::string> List(const std::string& prefix) const;

  std::size_t TotalBytes() const;
  std::size_t NumFiles() const { return files_.size(); }

 private:
  std::map<std::string, std::vector<std::uint8_t>> files_;
};

}  // namespace nephele

#endif  // SRC_DEVICES_HOSTFS_H_
