// The xl/libxl/libxc analogue: boots, saves, restores and destroys domains,
// runs the split-device negotiation, owns the guest-side frontend objects and
// the Dom0 memory accounting used by the Fig. 5 experiment.

#ifndef SRC_TOOLSTACK_TOOLSTACK_H_
#define SRC_TOOLSTACK_TOOLSTACK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/devices/device_manager.h"
#include "src/hypervisor/hypervisor.h"
#include "src/net/switch.h"
#include "src/obs/metrics.h"
#include "src/obs/services.h"
#include "src/obs/trace.h"
#include "src/toolstack/domain_config.h"
#include "src/xenstore/store.h"

namespace nephele {

// Guest-side device endpoints of one domain. Owned by the toolstack layer in
// this simulation (on real Xen they live inside the guest); the guest
// runtime borrows them.
struct GuestDevices {
  std::unique_ptr<NetFrontend> net;
  P9BackendProcess* p9 = nullptr;          // backend process serving this guest
  std::uint32_t p9_root_fid = 0;
  std::unique_ptr<VbdFrontend> vbd;
};

// A saved domain image (xl save analogue).
struct DomainImage {
  DomainConfig config;
  std::size_t pages = 0;  // full allocation is serialized (Sec. 6.1)
};

// A live-migration stream (xl migrate analogue): the p2m-ordered page
// contents plus config, shipped to the target host. Only pages that were
// ever written are carried explicitly; the rest are zero.
struct MigrationStream {
  DomainConfig config;
  std::size_t pages = 0;
  std::map<Gfn, std::vector<std::uint8_t>> written_pages;
};

class Toolstack {
 public:
  // Every service in `services` may be null: the toolstack then records into
  // a private registry, skips tracing (standalone constructions keep
  // working), and never arms the boot fault point.
  Toolstack(Hypervisor& hv, XenstoreDaemon& xs, DeviceManager& devices, EventLoop& loop,
            const CostModel& costs, const SystemServices& services = {});

  // Where new vifs are attached. Defaults to an internal Bridge; the Fig. 4
  // and Fig. 7 setups install a Bond instead.
  void SetDefaultSwitch(HostSwitch* sw) { default_switch_ = sw; }
  HostSwitch* default_switch() { return default_switch_; }

  // xl create: the full boot path. Returns with the domain running (the
  // guest app itself starts through the runtime's boot event).
  Result<DomId> CreateDomain(const DomainConfig& config);

  // xl save / restore.
  Result<DomainImage> SaveDomain(DomId dom);
  Result<DomId> RestoreDomain(const DomainImage& image);

  // xl destroy.
  Status DestroyDomain(DomId dom);

  // xl migrate --live: pre-copy emigration. Round 0 ships every page while
  // the guest keeps running under log-dirty; each further round re-ships
  // what the guest dirtied meanwhile (`between_rounds` lets callers drive
  // guest activity between rounds, standing in for concurrently running
  // vCPUs); the final stop-and-copy round happens paused — its duration is
  // the downtime. Same family restriction as MigrateOut.
  struct LiveMigrationStats {
    unsigned precopy_rounds = 0;
    std::size_t pages_shipped = 0;
    SimDuration downtime;
  };
  Result<MigrationStream> MigrateOutLive(DomId dom, unsigned max_rounds,
                                         std::function<void()> between_rounds,
                                         LiveMigrationStats* stats);

  // xl migrate: stop-and-copy emigration. Serializes the guest's pages in
  // p2m order and destroys the source domain. Refused with a typed
  // kFailedPrecondition naming the blocking relatives for domains with
  // living family relations — migrating a clone "would break the page
  // sharing potential" (Sec. 8). Equivalent to BeginMigrateOut +
  // CompleteMigrateOut back to back.
  Result<MigrationStream> MigrateOut(DomId dom);

  // First-class two-phase emigration, the RWTH-OS migration-framework shape
  // the ClusterFabric drives: Begin pauses the source and serializes its
  // pages (same checks, costs and stream as MigrateOut) but leaves the
  // domain intact so a failed transfer can roll back. Exactly one of
  // Complete (destroys the source — the copy landed) or Abort (resumes the
  // source as if nothing happened) must follow.
  Result<MigrationStream> BeginMigrateOut(DomId dom);
  Status CompleteMigrateOut(DomId dom);
  Status AbortMigrateOut(DomId dom);

  // Serializes a domain WITHOUT emigrating it: pause, snapshot, resume.
  // Family relations are allowed — the source keeps its sharing intact and
  // only the copy travels; the fabric's parent-image replication is built
  // on this. Not-present p2m entries (mid-stream lazy clones) ship as
  // zero pages.
  Result<MigrationStream> SnapshotDomain(DomId dom);

  // Immigration on the target host: rebuilds memory from the stream, then
  // rebuilds the page tables from the p2m (Sec. 5.2's stated purpose of the
  // p2m map) and reconnects devices.
  Result<DomId> MigrateIn(const MigrationStream& stream);

  Status PauseDomain(DomId dom) { return hv_.PauseDomain(dom); }
  Status UnpauseDomain(DomId dom) { return hv_.UnpauseDomain(dom); }

  GuestDevices* FindDevices(DomId dom);
  const DomainConfig* FindConfig(DomId dom) const;
  std::vector<DomId> RunningDomains() const;

  // Registers clone-side bookkeeping for a domain created by the clone
  // engine (called by xencloned, not by users).
  void AdoptClonedDomain(DomId child, const DomainConfig& config, GuestDevices devices);

  // Boot-time vif hotplug: udev event -> attach to switch + hotplug-status.
  // Public because xencloned reuses it for clone events.
  Status HandleVifHotplug(const UdevEvent& event);

  // The uniqueness scan vanilla xl performs on the configured name; disabled
  // by default to match the paper's Fig. 4 methodology (names are generated
  // unique; see Sec. 6.1). Enable for the LightVM-style ablation.
  void SetNameCheckEnabled(bool enabled) { name_check_enabled_ = enabled; }

  // --- Clone staging thread knob (xl clone-threads analogue). ---
  // The clone engine lives one layer above the toolstack, so the system
  // wires a setter at construction instead of the toolstack holding the
  // engine; administrators then tune staging parallelism through the
  // toolstack like any other host policy.
  void AttachCloneThreadSetter(std::function<void(unsigned)> setter) {
    clone_threads_setter_ = std::move(setter);
  }
  Status SetCloneWorkerThreads(unsigned n) {
    if (!clone_threads_setter_) {
      return ErrFailedPrecondition("no clone engine attached to the toolstack");
    }
    clone_threads_setter_(n);
    return Status::Ok();
  }

  // --- Dom0 memory accounting (Fig. 5). ---
  // The experiment splits 16 GiB into 4 GiB Dom0 + 12 GiB hypervisor pool.
  static constexpr std::size_t kDom0TotalBytes = 4ull * kGiB;
  // Kernel + Xen services + oxenstored baseline resident set.
  static constexpr std::size_t kDom0BaseServicesBytes = 600ull * kMiB;
  static constexpr std::size_t kDom0BytesPerDomainBookkeeping = 26 * 1024;
  std::size_t Dom0FreeBytes() const;

  // Auto-assigned guest addressing.
  MacAddr NextMac() { return 0x00163e000000ULL + next_mac_suffix_++; }
  Ipv4Addr NextIp() { return MakeIpv4(10, 8, 0, 2) + next_ip_suffix_++; }

  std::uint64_t domains_booted() const { return domains_booted_; }

 private:
  // Writes the Xenstore records a fresh domain gets (console, store, name,
  // /vm, /libxl and device entries), issuing real requests.
  void WriteBaseXenstoreEntries(DomId dom, const DomainConfig& config);
  Status SetupVif(DomId dom, const DomainConfig& config, GuestDevices& devices);
  Status SetupP9(DomId dom, const DomainConfig& config, GuestDevices& devices);
  Status SetupVbd(DomId dom, const DomainConfig& config, GuestDevices& devices);
  Status PopulateGuestMemory(DomId dom, const DomainConfig& config, bool charge_image_copy);
  // The typed Sec. 8 refusal: kFailedPrecondition naming every blocking
  // relative (parent and children, with names and domids).
  Status RefuseFamilyMigration(const Domain& d);
  // Shared stop-and-copy serializer of BeginMigrateOut and SnapshotDomain.
  Result<MigrationStream> SerializePages(const Domain& d, const DomainConfig& config);
  // Unwinds a partially-completed boot (create/restore/migrate-in): device
  // backends, console, xenstore subtrees and finally the domain itself, so
  // a failed xl create leaves Dom0 exactly as it found it.
  Status FailBoot(DomId dom, const DomainConfig& config, GuestDevices& devices, Status why);

  Hypervisor& hv_;
  XenstoreDaemon& xs_;
  DeviceManager& devices_;
  EventLoop& loop_;
  const CostModel& costs_;

  std::unique_ptr<MetricsRegistry> own_metrics_;  // set when none injected
  MetricsRegistry* metrics_;
  TraceRecorder* trace_;
  Counter& m_domains_booted_;
  Counter& m_domains_restored_;
  Counter& m_domains_destroyed_;
  Histogram& m_boot_ns_;
  Histogram& m_restore_ns_;
  FaultPoint* f_create_domain_ = nullptr;

  Bridge builtin_bridge_;
  HostSwitch* default_switch_;

  std::function<void(unsigned)> clone_threads_setter_;
  std::map<DomId, GuestDevices> guest_devices_;
  std::map<DomId, DomainConfig> configs_;
  // Domains sitting paused between BeginMigrateOut and Complete/Abort;
  // the value records whether the domain was running before Begin paused
  // it, so Abort restores the exact prior state.
  std::map<DomId, bool> pending_emigrations_;
  bool name_check_enabled_ = false;
  std::uint64_t next_mac_suffix_ = 1;
  std::uint32_t next_ip_suffix_ = 0;
  std::uint64_t domains_booted_ = 0;
};

}  // namespace nephele

#endif  // SRC_TOOLSTACK_TOOLSTACK_H_
