#include "src/toolstack/domain_config.h"

#include <algorithm>

#include "src/base/units.h"
#include "src/devices/netif.h"

namespace nephele {

GuestMemoryLayout ComputeGuestLayout(const DomainConfig& config, std::size_t min_domain_pages) {
  GuestMemoryLayout layout;
  layout.total_pages = std::max(MiBToPages(config.memory_mb), min_domain_pages);
  layout.text_pages = config.image_text_pages;
  layout.data_pages = config.image_data_pages;
  if (config.with_vif) {
    layout.io_pages = 2 + NetFrontend::kRxBufferPages + NetFrontend::kTxBufferPages;
  }
  layout.heap_first_gfn = layout.text_pages + layout.data_pages;
  std::size_t reserved =
      layout.text_pages + layout.data_pages + layout.special_pages + layout.io_pages;
  layout.heap_pages = layout.total_pages > reserved ? layout.total_pages - reserved : 0;
  return layout;
}

}  // namespace nephele
