// xl-style domain configuration.

#ifndef SRC_TOOLSTACK_DOMAIN_CONFIG_H_
#define SRC_TOOLSTACK_DOMAIN_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/net/packet.h"

namespace nephele {

struct DomainConfig {
  std::string name;
  // Total guest memory. Xen's minimum is 4 MiB (Sec. 6.2).
  std::size_t memory_mb = 4;
  int vcpus = 1;

  // Non-zero enables cloning for this guest ("a guest can be cloned only if
  // its xl configuration file specifies a non-zero value for the maximum
  // number of clones", Sec. 5.1).
  std::uint32_t max_clones = 0;

  // Unikernel image footprint (statically linked text dominates; Sec. 4.1).
  std::size_t image_text_pages = 300;  // ~1.2 MiB
  std::size_t image_data_pages = 64;   // ~256 KiB

  bool with_vif = true;
  MacAddr mac = 0;     // auto-assigned when 0
  Ipv4Addr ip = 0;     // auto-assigned when 0

  bool with_p9fs = false;
  std::string p9_export = "/srv/guest-root";

  // Virtual block device (the Sec. 5.3 extension device type).
  bool with_vbd = false;
  std::size_t vbd_size_mb = 64;

  // Leave clones paused after creation instead of resuming them (Sec. 5:
  // "child domains are either resumed or left in paused state, depending on
  // how they are configured").
  bool start_clones_paused = false;
};

// Deterministic guest pseudo-physical layout derived from a config:
//   [0, text) | [text, text+data) | heap | start_info, console, xenstore |
//   vif rings + buffers (when configured).
// Shared by the toolstack boot path and the guest runtime (heap/arena).
struct GuestMemoryLayout {
  std::size_t total_pages = 0;
  std::size_t text_pages = 0;
  std::size_t data_pages = 0;
  std::size_t heap_first_gfn = 0;
  std::size_t heap_pages = 0;
  std::size_t special_pages = 3;
  std::size_t io_pages = 0;
};

GuestMemoryLayout ComputeGuestLayout(const DomainConfig& config, std::size_t min_domain_pages);

}  // namespace nephele

#endif  // SRC_TOOLSTACK_DOMAIN_CONFIG_H_
