#include "src/toolstack/toolstack.h"

#include "src/base/log.h"
#include "src/xenstore/path.h"

namespace nephele {

Toolstack::Toolstack(Hypervisor& hv, XenstoreDaemon& xs, DeviceManager& devices, EventLoop& loop,
                     const CostModel& costs, const SystemServices& services)
    : hv_(hv),
      xs_(xs),
      devices_(devices),
      loop_(loop),
      costs_(costs),
      own_metrics_(services.metrics == nullptr ? std::make_unique<MetricsRegistry>() : nullptr),
      metrics_(services.metrics != nullptr ? services.metrics : own_metrics_.get()),
      trace_(services.trace),
      m_domains_booted_(metrics_->GetCounter("toolstack/domains_booted")),
      m_domains_restored_(metrics_->GetCounter("toolstack/domains_restored")),
      m_domains_destroyed_(metrics_->GetCounter("toolstack/domains_destroyed")),
      m_boot_ns_(metrics_->GetHistogram("toolstack/boot/duration_ns")),
      m_restore_ns_(metrics_->GetHistogram("toolstack/restore/duration_ns")) {
  if (services.faults != nullptr) {
    f_create_domain_ = services.faults->GetPoint("toolstack/create_domain");
  }
  default_switch_ = &builtin_bridge_;
  metrics_->GetGauge("toolstack/dom0_free_bytes").SetProvider([this] {
    return static_cast<std::int64_t>(Dom0FreeBytes());
  });
  metrics_->GetGauge("toolstack/domains_running").SetProvider([this] {
    return static_cast<std::int64_t>(configs_.size());
  });
}

std::size_t Toolstack::Dom0FreeBytes() const {
  std::size_t used = kDom0BaseServicesBytes;
  used += xs_.ApproxMemoryBytes();
  used += devices_.Dom0BackendBytes();
  used += configs_.size() * kDom0BytesPerDomainBookkeeping;
  return used >= kDom0TotalBytes ? 0 : kDom0TotalBytes - used;
}

Status Toolstack::FailBoot(DomId dom, const DomainConfig& config, GuestDevices& devices,
                           Status why) {
  // Reverse of the setup order. Every step is best-effort: whatever was not
  // yet created simply reports not-found and is skipped.
  if (devices.p9 != nullptr) {
    (void)devices.p9->ReleaseDomain(dom);
  }
  if (config.with_vif) {
    (void)devices_.netback().DestroyDevice(DeviceId{dom, DeviceType::kVif, 0});
    (void)xs_.Rm(XsBackendPath(kDom0, "vif", dom, 0));
  }
  if (config.with_p9fs) {
    (void)xs_.Rm(XsBackendPath(kDom0, "9pfs", dom, 0));
  }
  if (config.with_vbd) {
    (void)devices_.vbd().DestroyDisk(DeviceId{dom, DeviceType::kVbd, 0});
    (void)xs_.Rm(XsBackendPath(kDom0, "vbd", dom, 0));
  }
  (void)devices_.console().DestroyConsole(dom);
  (void)xs_.Rm(XsDomainPath(dom));
  (void)xs_.Rm("/vm/" + std::to_string(dom));
  (void)xs_.Rm("/libxl/" + std::to_string(dom));
  if (xs_.DomainKnown(dom)) {
    (void)xs_.ReleaseDomain(dom);
  }
  (void)hv_.DestroyDomain(dom);
  return why;
}

void Toolstack::WriteBaseXenstoreEntries(DomId dom, const DomainConfig& config) {
  const std::string dp = XsDomainPath(dom);
  (void)xs_.Write(dp + "/name", config.name);
  (void)xs_.Write(dp + "/domid", std::to_string(dom));
  (void)xs_.Write(dp + "/console/ring-ref", "consring");
  (void)xs_.Write(dp + "/console/port", "2");
  (void)xs_.Write(dp + "/console/type", "xenconsoled");
  (void)xs_.Write(dp + "/console/limit", "1048576");
  (void)xs_.Write(dp + "/store/ring-ref", "storering");
  (void)xs_.Write(dp + "/store/port", "1");
  (void)xs_.Write("/vm/" + std::to_string(dom) + "/name", config.name);
  (void)xs_.Write("/vm/" + std::to_string(dom) + "/uuid", "uuid-" + std::to_string(dom));
  (void)xs_.Write("/libxl/" + std::to_string(dom) + "/type", "pv");
}

Status Toolstack::PopulateGuestMemory(DomId dom, const DomainConfig& config,
                                      bool charge_image_copy) {
  const GuestMemoryLayout layout = ComputeGuestLayout(config, hv_.config().min_domain_pages);
  if (layout.heap_pages == 0 &&
      layout.total_pages <
          layout.text_pages + layout.data_pages + layout.io_pages + layout.special_pages) {
    return ErrInvalidArgument("memory too small for image + I/O pages");
  }

  NEPHELE_RETURN_IF_ERROR(
      hv_.PopulatePhysmap(dom, layout.text_pages, PageRole::kImageText).status());
  NEPHELE_RETURN_IF_ERROR(hv_.PopulatePhysmap(dom, layout.data_pages, PageRole::kData).status());
  NEPHELE_RETURN_IF_ERROR(hv_.PopulatePhysmap(dom, layout.heap_pages, PageRole::kData).status());
  NEPHELE_RETURN_IF_ERROR(hv_.AllocSpecialPage(dom, PageRole::kStartInfo).status());
  NEPHELE_RETURN_IF_ERROR(hv_.AllocSpecialPage(dom, PageRole::kConsoleRing).status());
  NEPHELE_RETURN_IF_ERROR(hv_.AllocSpecialPage(dom, PageRole::kXenstoreRing).status());
  if (charge_image_copy) {
    // Loading text+data from the image file into guest memory.
    loop_.AdvanceBy(costs_.page_copy *
                    static_cast<double>(config.image_text_pages + config.image_data_pages));
  }
  return Status::Ok();
}

Status Toolstack::SetupVif(DomId dom, const DomainConfig& config, GuestDevices& devices) {
  const int devid = 0;
  const std::string fe_path = XsFrontendPath(dom, "vif", devid);
  const std::string be_path = XsBackendPath(kDom0, "vif", dom, devid);

  MacAddr mac = config.mac != 0 ? config.mac : NextMac();
  Ipv4Addr ip = config.ip != 0 ? config.ip : NextIp();
  devices.net = std::make_unique<NetFrontend>(hv_, dom, devid, mac, ip);

  // Stage 1 of the negotiation: toolstack seeds both directories.
  (void)xs_.Write(fe_path + "/backend", be_path);
  (void)xs_.Write(fe_path + "/backend-id", "0");
  (void)xs_.Write(fe_path + "/handle", std::to_string(devid));
  (void)xs_.Write(fe_path + "/mac", std::to_string(mac));
  (void)xs_.Write(fe_path + "/state", XenbusStateValue(XenbusState::kInitialising));
  (void)xs_.Write(be_path + "/frontend", fe_path);
  (void)xs_.Write(be_path + "/frontend-id", std::to_string(dom));
  (void)xs_.Write(be_path + "/handle", std::to_string(devid));
  (void)xs_.Write(be_path + "/mac", std::to_string(mac));
  (void)xs_.Write(be_path + "/bridge", "xenbr0");
  (void)xs_.Write(be_path + "/state", XenbusStateValue(XenbusState::kInitialising));

  // Backend probes the new device and signals InitWait.
  (void)xs_.Read(be_path + "/frontend");
  (void)xs_.Read(be_path + "/mac");
  loop_.AdvanceBy(costs_.xenbus_transition);
  (void)xs_.Write(be_path + "/state", XenbusStateValue(XenbusState::kInitWait));

  // Frontend allocates rings from guest memory, grants them, Initialised.
  NEPHELE_RETURN_IF_ERROR(devices.net->AllocateRings());
  (void)xs_.Write(fe_path + "/tx-ring-ref", std::to_string(devices.net->tx_ring_gfn()));
  (void)xs_.Write(fe_path + "/rx-ring-ref", std::to_string(devices.net->rx_ring_gfn()));
  (void)xs_.Write(fe_path + "/event-channel", "4");
  loop_.AdvanceBy(costs_.xenbus_transition);
  (void)xs_.Write(fe_path + "/state", XenbusStateValue(XenbusState::kInitialised));

  // Backend maps the rings and connects (emits the udev add event; on the
  // boot path we run the hotplug work inline and the duplicate event is
  // ignored by its idempotent handler).
  (void)xs_.Read(fe_path + "/tx-ring-ref");
  (void)xs_.Read(fe_path + "/rx-ring-ref");
  loop_.AdvanceBy(costs_.xenbus_transition);
  DeviceId dev_id{dom, DeviceType::kVif, devid};
  NEPHELE_ASSIGN_OR_RETURN(Vif * vif, devices_.netback().ConnectDevice(dev_id, devices.net.get()));
  (void)xs_.Write(be_path + "/state", XenbusStateValue(XenbusState::kConnected));

  // Hotplug: udev wakeup + script run + switch attach.
  loop_.AdvanceBy(costs_.udev_event);
  NEPHELE_RETURN_IF_ERROR(HandleVifHotplug(UdevEvent{UdevEvent::Kind::kAdd, dev_id,
                                                     vif->port_name()}));

  // Frontend observes Connected.
  (void)xs_.Read(be_path + "/state");
  loop_.AdvanceBy(costs_.xenbus_transition);
  (void)xs_.Write(fe_path + "/state", XenbusStateValue(XenbusState::kConnected));
  return Status::Ok();
}

Status Toolstack::HandleVifHotplug(const UdevEvent& event) {
  if (event.kind != UdevEvent::Kind::kAdd) {
    return Status::Ok();
  }
  Vif* vif = devices_.netback().FindVif(event.device);
  if (vif == nullptr) {
    return ErrNotFound("vif for hotplug");
  }
  if (vif->attached_switch() != nullptr) {
    return Status::Ok();  // already handled (idempotent)
  }
  loop_.AdvanceBy(costs_.switch_attach);
  NEPHELE_RETURN_IF_ERROR(default_switch_->Attach(vif));
  vif->set_attached_switch(default_switch_);
  const std::string be_path =
      XsBackendPath(kDom0, "vif", event.device.dom, event.device.devid);
  (void)xs_.Write(be_path + "/hotplug-status", "connected");
  return Status::Ok();
}

Status Toolstack::SetupP9(DomId dom, const DomainConfig& config, GuestDevices& devices) {
  const std::string fe_path = XsFrontendPath(dom, "9pfs", 0);
  const std::string be_path = XsBackendPath(kDom0, "9pfs", dom, 0);
  (void)xs_.Write(fe_path + "/backend", be_path);
  (void)xs_.Write(fe_path + "/backend-id", "0");
  (void)xs_.Write(fe_path + "/state", XenbusStateValue(XenbusState::kInitialising));
  (void)xs_.Write(be_path + "/frontend", fe_path);
  (void)xs_.Write(be_path + "/frontend-id", std::to_string(dom));
  (void)xs_.Write(be_path + "/security_model", "none");
  (void)xs_.Write(be_path + "/path", config.p9_export);
  (void)xs_.Write(be_path + "/state", XenbusStateValue(XenbusState::kInitialising));

  // xl launches the QEMU 9pfs backend process for this guest (Sec. 5,
  // "on booting, xl launches the 9pfs filesystem backend as a process for
  // each new guest").
  NEPHELE_ASSIGN_OR_RETURN(P9BackendProcess * proc,
                           devices_.p9().LaunchForDomain(dom, config.p9_export));
  devices.p9 = proc;
  loop_.AdvanceBy(costs_.xenbus_transition);
  (void)xs_.Write(be_path + "/state", XenbusStateValue(XenbusState::kConnected));
  loop_.AdvanceBy(costs_.xenbus_transition);
  (void)xs_.Write(fe_path + "/state", XenbusStateValue(XenbusState::kConnected));
  NEPHELE_ASSIGN_OR_RETURN(devices.p9_root_fid, proc->Attach(dom));
  return Status::Ok();
}


Status Toolstack::SetupVbd(DomId dom, const DomainConfig& config, GuestDevices& devices) {
  const std::string fe_path = XsFrontendPath(dom, "vbd", 0);
  const std::string be_path = XsBackendPath(kDom0, "vbd", dom, 0);
  (void)xs_.Write(fe_path + "/backend", be_path);
  (void)xs_.Write(fe_path + "/backend-id", "0");
  (void)xs_.Write(fe_path + "/state", XenbusStateValue(XenbusState::kInitialising));
  (void)xs_.Write(be_path + "/frontend", fe_path);
  (void)xs_.Write(be_path + "/frontend-id", std::to_string(dom));
  (void)xs_.Write(be_path + "/sectors", std::to_string(config.vbd_size_mb * kMiB / 512));
  (void)xs_.Write(be_path + "/state", XenbusStateValue(XenbusState::kInitialising));

  DeviceId dev_id{dom, DeviceType::kVbd, 0};
  NEPHELE_RETURN_IF_ERROR(devices_.vbd().CreateDisk(dev_id, config.vbd_size_mb));
  devices.vbd = std::make_unique<VbdFrontend>(devices_.vbd(), dev_id);
  loop_.AdvanceBy(costs_.xenbus_transition);
  (void)xs_.Write(be_path + "/state", XenbusStateValue(XenbusState::kConnected));
  loop_.AdvanceBy(costs_.xenbus_transition);
  (void)xs_.Write(fe_path + "/state", XenbusStateValue(XenbusState::kConnected));
  return Status::Ok();
}

Result<DomId> Toolstack::CreateDomain(const DomainConfig& config) {
  const SimTime boot_start = loop_.Now();
  TraceSpan span = trace_ != nullptr ? trace_->BeginSpan("toolstack/boot") : TraceSpan();
  // xl process startup + config parsing.
  loop_.AdvanceBy(costs_.xl_exec_overhead);

  if (name_check_enabled_) {
    // Vanilla xl scans every running VM's name — the superlinear growth
    // LightVM reported (Sec. 6.1).
    loop_.AdvanceBy(costs_.name_check_per_domain * static_cast<double>(configs_.size()));
    for (const auto& [id, cfg] : configs_) {
      if (cfg.name == config.name) {
        return ErrAlreadyExists("domain name in use");
      }
    }
  }

  NEPHELE_RETURN_IF_ERROR(PokeFault(f_create_domain_));
  hv_.ChargeHypercall();
  NEPHELE_ASSIGN_OR_RETURN(DomId dom, hv_.CreateDomain(config.name, config.vcpus));

  GuestDevices devices;
  auto fail = [&](Status s) -> Result<DomId> { return FailBoot(dom, config, devices, s); };

  if (Status s = PopulateGuestMemory(dom, config, /*charge_image_copy=*/true); !s.ok()) {
    return fail(s);
  }
  if (Status s = hv_.BuildPageTables(dom); !s.ok()) {
    return fail(s);
  }
  if (config.max_clones > 0) {
    hv_.ChargeHypercall();
    (void)hv_.SetCloneConfig(dom, /*enabled=*/true, config.max_clones);
  }

  (void)xs_.IntroduceDomain(dom);
  WriteBaseXenstoreEntries(dom, config);

  if (Status s = devices_.console().CreateConsole(
          dom, hv_.FindDomain(dom)->console_ring_gfn);
      !s.ok()) {
    return fail(s);
  }
  if (config.with_vif) {
    if (Status s = SetupVif(dom, config, devices); !s.ok()) {
      return fail(s);
    }
  }
  if (config.with_p9fs) {
    if (Status s = SetupP9(dom, config, devices); !s.ok()) {
      return fail(s);
    }
  }
  if (config.with_vbd) {
    if (Status s = SetupVbd(dom, config, devices); !s.ok()) {
      return fail(s);
    }
  }

  guest_devices_[dom] = std::move(devices);
  configs_[dom] = config;
  ++domains_booted_;
  m_domains_booted_.Increment();

  hv_.ChargeHypercall();
  (void)hv_.UnpauseDomain(dom);
  m_boot_ns_.Observe((loop_.Now() - boot_start).ns());
  span.AddArg("dom", static_cast<std::int64_t>(dom));
  return dom;
}

Result<DomainImage> Toolstack::SaveDomain(DomId dom) {
  const Domain* d = hv_.FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  auto cfg_it = configs_.find(dom);
  if (cfg_it == configs_.end()) {
    return ErrNotFound("domain not managed by toolstack");
  }
  (void)hv_.PauseDomain(dom);
  loop_.AdvanceBy(costs_.save_fixed);
  // The whole allocation is serialized, used or not (Sec. 6.1).
  loop_.AdvanceBy(costs_.page_copy * static_cast<double>(d->tot_pages()));
  DomainImage image{cfg_it->second, d->tot_pages()};
  (void)hv_.UnpauseDomain(dom);
  return image;
}

Result<DomId> Toolstack::RestoreDomain(const DomainImage& image) {
  const SimTime restore_start = loop_.Now();
  loop_.AdvanceBy(costs_.xl_exec_overhead);
  loop_.AdvanceBy(costs_.restore_fixed);
  hv_.ChargeHypercall();
  NEPHELE_ASSIGN_OR_RETURN(DomId dom, hv_.CreateDomain(image.config.name, image.config.vcpus));
  GuestDevices devices;
  auto fail = [&](Status s) -> Result<DomId> { return FailBoot(dom, image.config, devices, s); };
  if (Status s = PopulateGuestMemory(dom, image.config, /*charge_image_copy=*/false); !s.ok()) {
    return fail(s);
  }
  // "The entire allocated VM memory is copied back from the image ...
  // regardless of the amount of memory that is actually used" (Sec. 6.1).
  loop_.AdvanceBy(costs_.page_copy * static_cast<double>(image.pages));
  if (Status s = hv_.BuildPageTables(dom); !s.ok()) {
    return fail(s);
  }
  if (image.config.max_clones > 0) {
    hv_.ChargeHypercall();
    (void)hv_.SetCloneConfig(dom, /*enabled=*/true, image.config.max_clones);
  }

  (void)xs_.IntroduceDomain(dom);
  WriteBaseXenstoreEntries(dom, image.config);

  if (Status s =
          devices_.console().CreateConsole(dom, hv_.FindDomain(dom)->console_ring_gfn);
      !s.ok()) {
    return fail(s);
  }
  if (image.config.with_vif) {
    if (Status s = SetupVif(dom, image.config, devices); !s.ok()) {
      return fail(s);
    }
  }
  if (image.config.with_p9fs) {
    if (Status s = SetupP9(dom, image.config, devices); !s.ok()) {
      return fail(s);
    }
  }
  if (image.config.with_vbd) {
    if (Status s = SetupVbd(dom, image.config, devices); !s.ok()) {
      return fail(s);
    }
  }
  guest_devices_[dom] = std::move(devices);
  configs_[dom] = image.config;
  m_domains_restored_.Increment();

  hv_.ChargeHypercall();
  (void)hv_.UnpauseDomain(dom);
  m_restore_ns_.Observe((loop_.Now() - restore_start).ns());
  return dom;
}



Result<MigrationStream> Toolstack::MigrateOutLive(DomId dom, unsigned max_rounds,
                                                  std::function<void()> between_rounds,
                                                  LiveMigrationStats* stats) {
  Domain* d = hv_.FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  auto cfg_it = configs_.find(dom);
  if (cfg_it == configs_.end()) {
    return ErrNotFound("domain not managed by toolstack");
  }
  if (d->parent != kDomInvalid || !d->children.empty()) {
    return RefuseFamilyMigration(*d);
  }

  MigrationStream stream;
  stream.config = cfg_it->second;
  stream.pages = d->tot_pages();
  LiveMigrationStats local;
  const FrameTable& frames = hv_.frames();

  auto ship_page = [&](Gfn gfn) {
    loop_.AdvanceBy(costs_.migrate_per_page);
    const FrameInfo& info = frames.info(d->p2m[gfn].mfn);
    if (info.data != nullptr) {
      stream.written_pages[gfn] =
          std::vector<std::uint8_t>(info.data->begin(), info.data->end());
      loop_.AdvanceBy(costs_.MigrateTransferCost(kPageSize));
    } else {
      stream.written_pages.erase(gfn);
    }
    ++local.pages_shipped;
  };

  // Round 0: full sweep while the guest keeps running.
  NEPHELE_RETURN_IF_ERROR(hv_.SetDirtyLogging(dom, true));
  for (Gfn gfn = 0; gfn < d->p2m.size(); ++gfn) {
    ship_page(gfn);
  }
  ++local.precopy_rounds;

  // Convergence rounds: re-ship what got dirtied meanwhile.
  for (unsigned round = 1; round < max_rounds; ++round) {
    if (between_rounds) {
      between_rounds();
    }
    auto dirty = hv_.FetchAndResetDirtyLog(dom);
    if (!dirty.ok()) {
      // Abandoning the migration must not leave the source domain paying
      // the dirty-tracking overhead forever.
      (void)hv_.SetDirtyLogging(dom, false);
      return dirty.status();
    }
    if (dirty->empty()) {
      break;
    }
    for (Gfn gfn : *dirty) {
      ship_page(gfn);
    }
    ++local.precopy_rounds;
  }

  // Stop-and-copy: the downtime window.
  (void)hv_.PauseDomain(dom);
  SimTime down_start = loop_.Now();
  auto last_dirty = hv_.FetchAndResetDirtyLog(dom);
  if (!last_dirty.ok()) {
    // Failed in the downtime window: resume the source untouched.
    (void)hv_.UnpauseDomain(dom);
    (void)hv_.SetDirtyLogging(dom, false);
    return last_dirty.status();
  }
  for (Gfn gfn : *last_dirty) {
    ship_page(gfn);
  }
  loop_.AdvanceBy(costs_.save_fixed);
  local.downtime = loop_.Now() - down_start;
  (void)hv_.SetDirtyLogging(dom, false);
  NEPHELE_RETURN_IF_ERROR(DestroyDomain(dom));
  if (stats != nullptr) {
    *stats = local;
  }
  return stream;
}

Status Toolstack::RefuseFamilyMigration(const Domain& d) {
  // Sec. 8: moving family members off-host would break the page sharing
  // potential; name the relatives so callers see exactly what blocks it.
  std::string msg = "domain '" + d.name + "' (domid " + std::to_string(d.id) +
                    ") has living family relations; cannot migrate: blocked by";
  if (d.parent != kDomInvalid) {
    const Domain* p = hv_.FindDomain(d.parent);
    msg += " parent '" + (p != nullptr ? p->name : std::string("?")) + "' (domid " +
           std::to_string(d.parent) + ")";
  }
  if (!d.children.empty()) {
    msg += d.parent != kDomInvalid ? " and children" : " children";
    bool first = true;
    for (DomId c : d.children) {
      const Domain* cd = hv_.FindDomain(c);
      msg += first ? " " : ", ";
      first = false;
      msg += "'" + (cd != nullptr ? cd->name : std::string("?")) + "' (domid " +
             std::to_string(c) + ")";
    }
  }
  return ErrFailedPrecondition(msg);
}

Result<MigrationStream> Toolstack::SerializePages(const Domain& d, const DomainConfig& config) {
  loop_.AdvanceBy(costs_.save_fixed);
  MigrationStream stream;
  stream.config = config;
  stream.pages = d.tot_pages();
  // Stop-and-copy: walk the p2m, shipping materialised page contents.
  // Not-present entries (a lazy clone snapshotted mid-stream) ship as zero.
  const FrameTable& frames = hv_.frames();
  for (Gfn gfn = 0; gfn < d.p2m.size(); ++gfn) {
    loop_.AdvanceBy(costs_.migrate_per_page);
    if (d.p2m[gfn].mfn == kInvalidMfn) {
      continue;
    }
    const FrameInfo& info = frames.info(d.p2m[gfn].mfn);
    if (info.data != nullptr) {
      stream.written_pages[gfn] =
          std::vector<std::uint8_t>(info.data->begin(), info.data->end());
      loop_.AdvanceBy(costs_.MigrateTransferCost(kPageSize));
    }
  }
  return stream;
}

Result<MigrationStream> Toolstack::BeginMigrateOut(DomId dom) {
  Domain* d = hv_.FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  auto cfg_it = configs_.find(dom);
  if (cfg_it == configs_.end()) {
    return ErrNotFound("domain not managed by toolstack");
  }
  if (d->parent != kDomInvalid || !d->children.empty()) {
    return RefuseFamilyMigration(*d);
  }
  if (pending_emigrations_.count(dom) != 0) {
    return ErrFailedPrecondition("emigration already in progress for domid " +
                                 std::to_string(dom));
  }
  const bool was_running = d->state == DomainState::kRunning;
  (void)hv_.PauseDomain(dom);
  NEPHELE_ASSIGN_OR_RETURN(MigrationStream stream, SerializePages(*d, cfg_it->second));
  pending_emigrations_[dom] = was_running;
  return stream;
}

Status Toolstack::CompleteMigrateOut(DomId dom) {
  if (pending_emigrations_.erase(dom) == 0) {
    return ErrFailedPrecondition("no emigration in progress for domid " + std::to_string(dom));
  }
  return DestroyDomain(dom);
}

Status Toolstack::AbortMigrateOut(DomId dom) {
  auto it = pending_emigrations_.find(dom);
  if (it == pending_emigrations_.end()) {
    return ErrFailedPrecondition("no emigration in progress for domid " + std::to_string(dom));
  }
  const bool was_running = it->second;
  pending_emigrations_.erase(it);
  if (was_running) {
    return hv_.UnpauseDomain(dom);
  }
  return Status::Ok();
}

Result<MigrationStream> Toolstack::MigrateOut(DomId dom) {
  NEPHELE_ASSIGN_OR_RETURN(MigrationStream stream, BeginMigrateOut(dom));
  NEPHELE_RETURN_IF_ERROR(CompleteMigrateOut(dom));
  return stream;
}

Result<MigrationStream> Toolstack::SnapshotDomain(DomId dom) {
  Domain* d = hv_.FindDomain(dom);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  auto cfg_it = configs_.find(dom);
  if (cfg_it == configs_.end()) {
    return ErrNotFound("domain not managed by toolstack");
  }
  const bool was_running = d->state == DomainState::kRunning;
  (void)hv_.PauseDomain(dom);
  auto stream = SerializePages(*d, cfg_it->second);
  if (was_running) {
    (void)hv_.UnpauseDomain(dom);
  }
  return stream;
}

Result<DomId> Toolstack::MigrateIn(const MigrationStream& stream) {
  loop_.AdvanceBy(costs_.restore_fixed);
  hv_.ChargeHypercall();
  NEPHELE_ASSIGN_OR_RETURN(DomId dom,
                           hv_.CreateDomain(stream.config.name, stream.config.vcpus));
  GuestDevices devices;
  auto fail = [&](Status s) -> Result<DomId> {
    return FailBoot(dom, stream.config, devices, s);
  };
  if (Status s = PopulateGuestMemory(dom, stream.config, /*charge_image_copy=*/false); !s.ok()) {
    return fail(s);
  }
  // Replay the shipped pages, then rebuild page tables from the p2m and
  // update it with the new machine frame numbers (Sec. 5.2).
  for (const auto& [gfn, bytes] : stream.written_pages) {
    if (Status s = hv_.WriteGuestPage(dom, gfn, 0, bytes.data(), bytes.size()); !s.ok()) {
      return fail(s);
    }
  }
  loop_.AdvanceBy(costs_.migrate_per_page * static_cast<double>(stream.pages));
  if (Status s = hv_.BuildPageTables(dom); !s.ok()) {
    return fail(s);
  }
  if (stream.config.max_clones > 0) {
    hv_.ChargeHypercall();
    (void)hv_.SetCloneConfig(dom, /*enabled=*/true, stream.config.max_clones);
  }

  (void)xs_.IntroduceDomain(dom);
  WriteBaseXenstoreEntries(dom, stream.config);
  if (Status s = devices_.console().CreateConsole(dom, hv_.FindDomain(dom)->console_ring_gfn);
      !s.ok()) {
    return fail(s);
  }
  if (stream.config.with_vif) {
    if (Status s = SetupVif(dom, stream.config, devices); !s.ok()) {
      return fail(s);
    }
  }
  if (stream.config.with_p9fs) {
    if (Status s = SetupP9(dom, stream.config, devices); !s.ok()) {
      return fail(s);
    }
  }
  if (stream.config.with_vbd) {
    if (Status s = SetupVbd(dom, stream.config, devices); !s.ok()) {
      return fail(s);
    }
  }
  guest_devices_[dom] = std::move(devices);
  configs_[dom] = stream.config;
  hv_.ChargeHypercall();
  (void)hv_.UnpauseDomain(dom);
  return dom;
}

Status Toolstack::DestroyDomain(DomId dom) {
  auto cfg_it = configs_.find(dom);
  if (cfg_it == configs_.end()) {
    return ErrNotFound("domain not managed by toolstack");
  }
  if (cfg_it->second.with_vif) {
    (void)devices_.netback().DestroyDevice(DeviceId{dom, DeviceType::kVif, 0});
  }
  if (GuestDevices* gd = FindDevices(dom); gd != nullptr && gd->p9 != nullptr) {
    (void)gd->p9->ReleaseDomain(dom);
  }
  if (cfg_it->second.with_vbd) {
    (void)devices_.vbd().DestroyDisk(DeviceId{dom, DeviceType::kVbd, 0});
  }
  (void)devices_.console().DestroyConsole(dom);
  (void)xs_.Rm(XsDomainPath(dom));
  (void)xs_.Rm("/vm/" + std::to_string(dom));
  (void)xs_.Rm("/libxl/" + std::to_string(dom));
  // Backend directories live under Dom0's path and must go too.
  if (cfg_it->second.with_vif) {
    (void)xs_.Rm(XsBackendPath(kDom0, "vif", dom, 0));
  }
  if (cfg_it->second.with_p9fs) {
    (void)xs_.Rm(XsBackendPath(kDom0, "9pfs", dom, 0));
  }
  if (cfg_it->second.with_vbd) {
    (void)xs_.Rm(XsBackendPath(kDom0, "vbd", dom, 0));
  }
  (void)xs_.ReleaseDomain(dom);
  guest_devices_.erase(dom);
  configs_.erase(dom);
  hv_.ChargeHypercall();
  m_domains_destroyed_.Increment();
  return hv_.DestroyDomain(dom);
}

GuestDevices* Toolstack::FindDevices(DomId dom) {
  auto it = guest_devices_.find(dom);
  return it == guest_devices_.end() ? nullptr : &it->second;
}

const DomainConfig* Toolstack::FindConfig(DomId dom) const {
  auto it = configs_.find(dom);
  return it == configs_.end() ? nullptr : &it->second;
}

std::vector<DomId> Toolstack::RunningDomains() const {
  std::vector<DomId> out;
  out.reserve(configs_.size());
  for (const auto& [id, cfg] : configs_) {
    out.push_back(id);
  }
  return out;
}

void Toolstack::AdoptClonedDomain(DomId child, const DomainConfig& config,
                                  GuestDevices devices) {
  configs_[child] = config;
  guest_devices_[child] = std::move(devices);
}

}  // namespace nephele
