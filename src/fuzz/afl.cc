#include "src/fuzz/afl.h"

namespace nephele {

AflEngine::AflEngine(std::uint64_t seed) : rng_(seed) {}

void AflEngine::AddSeed(std::vector<std::uint8_t> input) {
  queue_.push_back(std::move(input));
}

std::vector<std::uint8_t> AflEngine::Mutate(const std::vector<std::uint8_t>& base) {
  std::vector<std::uint8_t> out = base;
  if (out.empty()) {
    out.resize(8);
  }
  switch (rng_.NextBelow(4)) {
    case 0: {  // bitflip
      std::size_t bit = rng_.NextBelow(out.size() * 8);
      out[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      break;
    }
    case 1: {  // byte replace
      out[rng_.NextBelow(out.size())] = static_cast<std::uint8_t>(rng_.NextBelow(256));
      break;
    }
    case 2: {  // arith
      std::uint8_t& b = out[rng_.NextBelow(out.size())];
      b = static_cast<std::uint8_t>(b + static_cast<std::uint8_t>(rng_.NextInRange(-8, 8)));
      break;
    }
    default: {  // extend (havoc-style block append)
      std::size_t extra = 4 * (1 + rng_.NextBelow(4));
      for (std::size_t i = 0; i < extra; ++i) {
        out.push_back(static_cast<std::uint8_t>(rng_.NextBelow(256)));
      }
      if (out.size() > 256) {
        out.resize(256);
      }
      break;
    }
  }
  return out;
}

std::vector<std::uint8_t> AflEngine::NextInput() {
  ++executions_;
  if (queue_.empty()) {
    std::vector<std::uint8_t> fresh(8);
    for (auto& b : fresh) {
      b = static_cast<std::uint8_t>(rng_.NextBelow(256));
    }
    return fresh;
  }
  const auto& base = queue_[next_entry_ % queue_.size()];
  ++next_entry_;
  return Mutate(base);
}

void AflEngine::ReportResult(const std::vector<std::uint8_t>& input,
                             const std::vector<std::uint32_t>& edges, bool crashed) {
  std::size_t fresh = coverage_.Merge(edges);
  if (crashed) {
    ++crashes_;
  }
  if (fresh > 0 && queue_.size() < 4096) {
    queue_.push_back(input);
  }
}

}  // namespace nephele
