// KFX-like harness (Kernel Fuzzer for Xen, Sec. 7.2), extended as in the
// paper to fuzz paravirtualized guests through the Nephele cloning API:
// clone the target once, instrument the clone with breakpoints via
// clone_cow, run one AFL input per iteration, and restore the clone's
// memory with clone_reset.

#ifndef SRC_FUZZ_KFX_H_
#define SRC_FUZZ_KFX_H_

#include "src/apps/fuzz_target_app.h"
#include "src/fuzz/afl.h"
#include "src/guest/guest_manager.h"

namespace nephele {

class KfxHarness {
 public:
  KfxHarness(GuestManager& manager, AflEngine& afl) : manager_(manager), afl_(afl) {}

  // Clones `target` (host-triggered, like fuzzing an arbitrary VM) and
  // instruments the clone. Runs the event loop to settle the second stage.
  Status Setup(DomId target, std::size_t breakpoint_pages = 16);

  struct IterationResult {
    bool crashed = false;
    std::size_t new_edges = 0;
    std::size_t pages_reset = 0;
  };

  // One fuzzing iteration on the instrumented clone.
  Result<IterationResult> RunIteration();

  DomId clone_dom() const { return clone_; }
  std::uint64_t iterations() const { return iterations_; }

 private:
  GuestManager& manager_;
  AflEngine& afl_;
  DomId target_ = kDomInvalid;
  DomId clone_ = kDomInvalid;
  std::uint64_t iterations_ = 0;
};

}  // namespace nephele

#endif  // SRC_FUZZ_KFX_H_
