#include "src/fuzz/kfx.h"

namespace nephele {

Status KfxHarness::Setup(DomId target, std::size_t breakpoint_pages) {
  target_ = target;
  NEPHELE_RETURN_IF_ERROR(
      manager_.Fork(target, 1, /*continuation=*/nullptr, /*caller=*/kDom0));
  manager_.system().Settle();
  const Domain* td = manager_.system().hypervisor().FindDomain(target);
  if (td == nullptr || td->children.empty()) {
    return ErrInternal("clone did not materialise");
  }
  clone_ = td->children.back();

  // Instrumentation: breakpoints go into the clone's text, which must be
  // COWed explicitly first (the clone_cow subcommand added for KFX).
  CloneEngine& engine = manager_.system().clone_engine();
  NEPHELE_RETURN_IF_ERROR(engine.CloneCow(kDom0, clone_, /*gfn=*/0, breakpoint_pages));
  manager_.system().loop().AdvanceBy(manager_.system().costs().kfx_breakpoint_insert *
                                     static_cast<double>(breakpoint_pages));
  // The instrumented state is the reset baseline: iterations restore to it,
  // not to the uninstrumented parent (KFX re-arms breakpoints otherwise).
  Domain* cd = manager_.system().hypervisor().FindDomain(clone_);
  if (cd != nullptr) {
    cd->dirty_since_clone.clear();
  }
  return Status::Ok();
}

Result<KfxHarness::IterationResult> KfxHarness::RunIteration() {
  auto* app = dynamic_cast<FuzzTargetApp*>(manager_.AppOf(clone_));
  GuestContext* ctx = manager_.ContextOf(clone_);
  if (app == nullptr || ctx == nullptr) {
    return ErrFailedPrecondition("harness not set up");
  }
  EventLoop& loop = manager_.system().loop();
  const CostModel& costs = manager_.system().costs();

  std::vector<std::uint8_t> input = afl_.NextInput();
  loop.AdvanceBy(costs.afl_overhead_per_iter);
  loop.AdvanceBy(costs.fuzz_exec_unikraft);
  ExecOutcome outcome = app->ExecuteInput(*ctx, input);

  IterationResult result;
  result.crashed = outcome.crashed;
  if (outcome.crashed) {
    // Crash handling: KFX records the input and tears the vCPU state down
    // before the reset.
    loop.AdvanceBy(SimDuration::Micros(300));
  }
  std::size_t before = afl_.edges_covered();
  afl_.ReportResult(input, outcome.coverage, outcome.crashed);
  result.new_edges = afl_.edges_covered() - before;

  NEPHELE_ASSIGN_OR_RETURN(result.pages_reset,
                           manager_.system().clone_engine().CloneReset(kDom0, clone_));
  ++iterations_;
  return result;
}

}  // namespace nephele
