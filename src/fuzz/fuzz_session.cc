#include "src/fuzz/fuzz_session.h"

#include "src/apps/fuzz_target_app.h"
#include "src/base/log.h"

namespace nephele {

namespace {

FuzzTargetConfig TargetConfigFor(const FuzzSessionConfig& config) {
  FuzzTargetConfig target;
  target.trivial_getppid_mode = config.getppid_baseline;
  if (config.mode == FuzzMode::kLinuxKernelModule) {
    // Self-contained snippet, no library calls; but a Linux guest has more
    // state: ~8 dirty pages per iteration (Sec. 7.2).
    target.implemented_syscalls = 64;
    target.scratch_pages = 8;
  }
  return target;
}

DomainConfig FuzzGuestConfig() {
  DomainConfig cfg;
  cfg.name = "fuzz-target";
  cfg.memory_mb = 8;
  cfg.max_clones = 4096;
  cfg.with_vif = false;  // the adapter consumes AFL input, no network needed
  return cfg;
}

}  // namespace

FuzzSessionResult RunFuzzSession(GuestManager& manager, const FuzzSessionConfig& config) {
  Host& sys = manager.system();
  EventLoop& loop = sys.loop();
  const CostModel& costs = sys.costs();
  AflEngine afl(config.seed);
  afl.AddSeed({0, 0, 0, 0, 8, 1, 0, 0});

  FuzzSessionResult result;
  SimTime start = loop.Now();
  SimTime deadline = start + config.duration;
  SimTime next_sample = start + config.sample_every;
  std::uint64_t execs_in_window = 0;

  auto sample_if_due = [&]() {
    while (loop.Now() >= next_sample) {
      double window_s = config.sample_every.ToSeconds();
      result.series.push_back(FuzzSample{(next_sample - start).ToSeconds(),
                                         static_cast<double>(execs_in_window) / window_s});
      execs_in_window = 0;
      next_sample = next_sample + config.sample_every;
    }
  };

  switch (config.mode) {
    case FuzzMode::kUnikraftClone: {
      auto dom = manager.Launch(FuzzGuestConfig(),
                                std::make_unique<FuzzTargetApp>(TargetConfigFor(config)));
      if (!dom.ok()) {
        NEPHELE_LOG(kError, "fuzz") << "launch failed: " << dom.status().ToString();
        return result;
      }
      sys.Settle();
      KfxHarness harness(manager, afl);
      if (Status s = harness.Setup(*dom); !s.ok()) {
        NEPHELE_LOG(kError, "fuzz") << "setup failed: " << s.ToString();
        return result;
      }
      while (loop.Now() < deadline) {
        auto iteration = harness.RunIteration();
        if (!iteration.ok()) {
          break;
        }
        ++result.total_executions;
        ++execs_in_window;
        sample_if_due();
      }
      break;
    }
    case FuzzMode::kUnikraftNoClone: {
      // "We start a new VM instance for each AFL input because it is the
      // only way of reaching the same state at the beginning of each
      // iteration" (Sec. 7.2).
      while (loop.Now() < deadline) {
        auto dom = manager.Launch(FuzzGuestConfig(),
                                  std::make_unique<FuzzTargetApp>(TargetConfigFor(config)));
        if (!dom.ok()) {
          break;
        }
        sys.Settle();
        auto* app = dynamic_cast<FuzzTargetApp*>(manager.AppOf(*dom));
        GuestContext* ctx = manager.ContextOf(*dom);
        std::vector<std::uint8_t> input = afl.NextInput();
        loop.AdvanceBy(costs.afl_overhead_per_iter);
        loop.AdvanceBy(costs.fuzz_exec_unikraft);
        if (app != nullptr && ctx != nullptr) {
          ExecOutcome outcome = app->ExecuteInput(*ctx, input);
          afl.ReportResult(input, outcome.coverage, outcome.crashed);
        }
        loop.AdvanceBy(costs.vm_teardown);
        (void)manager.Destroy(*dom);
        sys.Settle();
        ++result.total_executions;
        ++execs_in_window;
        sample_if_due();
      }
      break;
    }
    case FuzzMode::kLinuxProcess:
    case FuzzMode::kLinuxKernelModule: {
      // Cost-model targets: synthetic coverage mirrors the adapter's edge
      // scheme so AFL behaves comparably.
      FuzzTargetConfig target = TargetConfigFor(config);
      while (loop.Now() < deadline) {
        std::vector<std::uint8_t> input = afl.NextInput();
        loop.AdvanceBy(costs.afl_overhead_per_iter);
        bool crashed = false;
        std::vector<std::uint32_t> edges;
        if (config.getppid_baseline) {
          edges = {1, 2, 3};
        } else {
          for (std::size_t i = 0; i + 4 <= input.size(); i += 4) {
            std::uint32_t nr = input[i] % 64;
            edges.push_back(100 + nr);
            edges.push_back(1000 + nr * 8 + input[i + 1] % 8);
            if (config.mode == FuzzMode::kLinuxProcess &&
                nr >= target.implemented_syscalls + 16) {
              crashed = true;  // native Linux implements more of the table
              break;
            }
          }
        }
        double exec_scale = config.getppid_baseline ? 0.9 : 1.0;
        if (config.mode == FuzzMode::kLinuxProcess) {
          loop.AdvanceBy(costs.fuzz_exec_process * exec_scale);
        } else {
          loop.AdvanceBy(costs.fuzz_exec_kernel_module * exec_scale);
          // KFX memory reset for the Linux VM: ~250 us, ~8 dirty pages.
          loop.AdvanceBy(costs.clone_reset_fixed +
                         costs.clone_reset_per_page * static_cast<double>(target.scratch_pages));
        }
        afl.ReportResult(input, edges, crashed);
        ++result.total_executions;
        ++execs_in_window;
        sample_if_due();
      }
      break;
    }
  }

  double elapsed = (loop.Now() - start).ToSeconds();
  result.average_execs_per_second =
      elapsed > 0 ? static_cast<double>(result.total_executions) / elapsed : 0;
  result.edges_covered = afl.edges_covered();
  result.crashes = afl.crashes();
  return result;
}

}  // namespace nephele
