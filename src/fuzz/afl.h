// AFL-like mutation engine (Sec. 7.2 uses AFL both natively and underneath
// KFX): keeps a queue of interesting inputs, mutates deterministically +
// havoc-style, and favours inputs that discovered new coverage.

#ifndef SRC_FUZZ_AFL_H_
#define SRC_FUZZ_AFL_H_

#include <cstdint>
#include <vector>

#include "src/fuzz/coverage.h"
#include "src/sim/rng.h"

namespace nephele {

class AflEngine {
 public:
  explicit AflEngine(std::uint64_t seed);

  // Adds a seed input to the queue.
  void AddSeed(std::vector<std::uint8_t> input);

  // Produces the next input to execute (mutation of a queue entry).
  std::vector<std::uint8_t> NextInput();

  // Reports the result of executing the last input; queues it when it found
  // new coverage.
  void ReportResult(const std::vector<std::uint8_t>& input,
                    const std::vector<std::uint32_t>& edges, bool crashed);

  std::size_t queue_size() const { return queue_.size(); }
  std::size_t crashes() const { return crashes_; }
  std::size_t edges_covered() const { return coverage_.edges_covered(); }
  std::uint64_t executions() const { return executions_; }

 private:
  std::vector<std::uint8_t> Mutate(const std::vector<std::uint8_t>& base);

  Rng rng_;
  CoverageMap coverage_;
  std::vector<std::vector<std::uint8_t>> queue_;
  std::size_t next_entry_ = 0;
  std::size_t crashes_ = 0;
  std::uint64_t executions_ = 0;
};

}  // namespace nephele

#endif  // SRC_FUZZ_AFL_H_
