#include "src/fuzz/coverage.h"

namespace nephele {

std::size_t CoverageMap::Merge(const std::vector<std::uint32_t>& edges) {
  std::size_t fresh = 0;
  for (std::uint32_t edge : edges) {
    std::uint8_t& slot = map_[edge % kMapSize];
    if (slot == 0) {
      ++fresh;
      ++covered_;
    }
    if (slot != 0xff) {
      ++slot;
    }
  }
  return fresh;
}

void CoverageMap::Reset() {
  map_.fill(0);
  covered_ = 0;
}

}  // namespace nephele
