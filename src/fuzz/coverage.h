// AFL-style edge-coverage bitmap.

#ifndef SRC_FUZZ_COVERAGE_H_
#define SRC_FUZZ_COVERAGE_H_

#include <array>
#include <cstdint>
#include <vector>

namespace nephele {

class CoverageMap {
 public:
  static constexpr std::size_t kMapSize = 1 << 16;

  // Folds the execution's edges into the map; returns how many edges were
  // globally new (virgin bits cleared).
  std::size_t Merge(const std::vector<std::uint32_t>& edges);

  bool Covered(std::uint32_t edge) const { return map_[edge % kMapSize] != 0; }
  std::size_t edges_covered() const { return covered_; }
  void Reset();

 private:
  std::array<std::uint8_t, kMapSize> map_{};
  std::size_t covered_ = 0;
};

}  // namespace nephele

#endif  // SRC_FUZZ_COVERAGE_H_
