// Fig. 9 session driver: runs a fuzzing campaign in one of the paper's
// configurations and samples throughput (executions/s) over virtual time.

#ifndef SRC_FUZZ_FUZZ_SESSION_H_
#define SRC_FUZZ_FUZZ_SESSION_H_

#include <vector>

#include "src/fuzz/kfx.h"
#include "src/guest/guest_manager.h"

namespace nephele {

enum class FuzzMode {
  // Unikraft guest, new VM booted for every input (no cloning support).
  kUnikraftNoClone,
  // Unikraft guest fuzzed through KFX + Nephele cloning.
  kUnikraftClone,
  // Native Linux process under plain AFL (no KFX / no coverage VM exits).
  kLinuxProcess,
  // Linux VM kernel module under KFX (legacy VM-fork path).
  kLinuxKernelModule,
};

struct FuzzSessionConfig {
  FuzzMode mode = FuzzMode::kUnikraftClone;
  // getppid-style stable baseline instead of the partially-supported
  // syscall subsystem (Sec. 7.2).
  bool getppid_baseline = false;
  SimDuration duration = SimDuration::Seconds(300);
  SimDuration sample_every = SimDuration::Seconds(10);
  std::uint64_t seed = 1;
};

struct FuzzSample {
  double t_seconds = 0;
  double execs_per_second = 0;
};

struct FuzzSessionResult {
  std::vector<FuzzSample> series;
  double average_execs_per_second = 0;
  std::uint64_t total_executions = 0;
  std::size_t edges_covered = 0;
  std::size_t crashes = 0;
};

// Runs a campaign. For the two Unikraft modes a fresh guest environment is
// created inside `manager`'s system; the Linux modes are cost models driven
// by the same AFL engine.
FuzzSessionResult RunFuzzSession(GuestManager& manager, const FuzzSessionConfig& config);

}  // namespace nephele

#endif  // SRC_FUZZ_FUZZ_SESSION_H_
