// CloneScheduler: the control-plane layer between clone consumers (the FaaS
// gateway/backend, benches, DST scenarios) and the clone pipeline. The paper
// stops at the mechanism — a single CLONEOP call producing a batch — and its
// FaaS evaluation issues one synchronous clone per scale-up decision; this
// scheduler adds the policy layer a production deployment needs (ROADMAP:
// "sharding, batching, async, caching"):
//
//   batching    Requests for the same parent arriving within a sim-time
//               window (or while an earlier batch is still in flight)
//               coalesce into one CloneEngine batch — the shape PR 3's
//               parallel stage 1 is optimised for. Per-parent batches are
//               serialised: the parent is paused for the whole first+second
//               stage, so a second CLONEOP cannot overlap it anyway.
//   warm pool   A completed invocation releases its child back to the
//               scheduler: the child is CloneReset (O(dirtied pages), the
//               Sec. 7.2 mechanism) and parked instead of destroyed, and the
//               next request is served from the pool in O(reset) rather than
//               O(clone) — the SnowFlock / Firecracker microVM-pool
//               economics. Pools are per parent, most-recently-parked first;
//               eviction is LRU, driven by a per-parent capacity cap and a
//               Dom0 free-memory watermark.
//   admission   The per-parent queue is bounded: a request that would push
//               it past the limit is rejected synchronously with a typed
//               kResourceExhausted status, and a queued request not served
//               within the timeout fails with kAborted — overload degrades
//               deterministically instead of growing unboundedly.
//
// Every decision runs on the deterministic EventLoop (window timers, grant
// delivery, timeouts), so scheduled runs stay byte-identical across reruns
// and clone-engine worker counts. The scheduler registers itself as a
// CloneObserver on the engine — batch completion and per-child resumes drive
// grant delivery — and since its batches go through the ordinary CLONEOP
// path, every other observer (metrics, tracing, the guest runtime) sees
// scheduled clones exactly like direct ones.
//
// Like GuestManager, the scheduler is built ON TOP of a NepheleSystem, not
// inside it: systems that never schedule pay nothing and export unchanged
// metrics.

#ifndef SRC_SCHED_SCHEDULER_H_
#define SRC_SCHED_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "src/base/result.h"
#include "src/core/clone_engine.h"
#include "src/core/clone_types.h"
#include "src/core/system.h"
#include "src/fault/fault.h"
#include "src/obs/clone_observer.h"
#include "src/obs/metrics.h"
#include "src/obs/services.h"
#include "src/obs/trace.h"
#include "src/sim/event_loop.h"
#include "src/toolstack/toolstack.h"

namespace nephele {

// What happened to a released child. `parked` is false when the child was
// destroyed instead — either the CloneReset failed (fallback destroy,
// `reset_applied` false) or an eviction pass reclaimed it before Release
// returned (`reset_applied` still true).
struct ReleaseOutcome {
  bool parked = false;
  bool reset_applied = false;
  std::size_t pages_restored = 0;
};

class CloneScheduler : public CloneObserver {
 public:
  // Invoked exactly once per requested child: with the granted DomId (warm
  // or freshly cloned, delivered through the event loop), or with the error
  // that retired the request (timeout, batch failure, stage-2 abort).
  using GrantCallback = std::function<void(Result<DomId>)>;
  // The batch executor Dispatch() calls. Defaults to CloneEngine::Clone;
  // consumers whose children need runtime plumbing substitute their own
  // (the FaaS backend uses GuestManager::ForkChildren).
  using CloneExecutor = std::function<Result<std::vector<DomId>>(const CloneRequest&)>;
  // How an evicted (or fallback-destroyed) child is torn down. Defaults to
  // Toolstack::DestroyDomain + hypervisor destroy.
  using EvictFn = std::function<void(DomId)>;

  CloneScheduler(Hypervisor& hv, CloneEngine& engine, Toolstack& toolstack, EventLoop& loop,
                 SchedulerConfig config = {}, const SystemServices& services = {});
  // Convenience wiring: knobs from host.config().sched, services from
  // host.services(). A NepheleSystem converts to its Host implicitly, so
  // `CloneScheduler sched(system)` keeps working.
  explicit CloneScheduler(Host& host)
      : CloneScheduler(host.hypervisor(), host.clone_engine(), host.toolstack(),
                       host.loop(), host.config().sched, host.services()) {}

  CloneScheduler(const CloneScheduler&) = delete;
  CloneScheduler& operator=(const CloneScheduler&) = delete;
  ~CloneScheduler() override;

  // Requests `req.num_children` children of `req.parent`. Admission is
  // checked against the whole request up front (typed kResourceExhausted
  // when the queue cannot take it); then warm children serve as many
  // requests as the pool holds and the remainder queues for the next batch.
  // `cb` fires once per requested child, always through the event loop.
  Status Acquire(const CloneRequest& req, GrantCallback cb);

  // An invocation finished with `child`: CloneReset it and park it in the
  // parent's warm pool (evicting LRU children past the capacity cap or the
  // Dom0 watermark). A failed reset falls back to destroying the child —
  // Release still succeeds, with outcome.parked == false.
  Result<ReleaseOutcome> Release(DomId child);

  // Drops `dom` from every pool and in-flight map without touching the
  // domain. For callers that destroy domains behind the scheduler's back
  // (the DST executor's destroy op and teardown).
  void Forget(DomId dom);

  // Teardown: destroys every parked child and fails every queued request
  // with kAborted.
  void DrainAll();

  void SetCloneExecutor(CloneExecutor executor);
  void SetEvictFn(EvictFn evict);

  // ---------------------------------------------------------------------
  // Telemetry feedback (driven by SchedulerAlarmFeedback, src/sched/
  // feedback.h — or directly by tests/operators).
  // ---------------------------------------------------------------------

  // Stretches the batching window: future windows arm for
  // config().batch_window * scale. Values below 1 clamp to 1; already-armed
  // windows fire on their old schedule.
  void SetBatchWindowScale(double scale);
  double batch_window_scale() const { return window_scale_; }
  SimDuration effective_batch_window() const {
    return config_.batch_window * window_scale_;
  }

  // While frozen, Release parks unconditionally: capacity and
  // memory-pressure eviction are suspended (pools may exceed
  // warm_pool_capacity). Unfreezing runs a catch-up sweep that restores
  // both limits. Transitions are counted in sched/feedback_transitions and
  // mirrored by the sched/eviction_frozen gauge.
  void SetEvictionFrozen(bool frozen);
  bool eviction_frozen() const { return eviction_frozen_; }

  const SchedulerConfig& config() const { return config_; }
  std::size_t WarmPoolSize(DomId parent) const;
  std::size_t TotalPooled() const { return total_parked_; }
  std::size_t QueueDepth(DomId parent) const;
  std::size_t TotalQueued() const { return total_queued_; }

  // CloneObserver: batch completion (parent resume) re-arms dispatch;
  // per-child resumes deliver grants; stage-2 aborts retire their request.
  void OnResume(DomId dom, bool is_child) override;
  void OnCloneAborted(DomId parent, DomId child) override;

 private:
  struct Ticket {
    std::uint64_t id = 0;
    SimTime enqueued_at;
    GrantCallback cb;
  };
  struct ParentState {
    std::deque<Ticket> queue;       // cold requests awaiting a batch
    std::vector<DomId> pool;        // parked children; back = most recent
    bool window_armed = false;
    std::uint64_t epoch = 0;        // invalidates stale window timers
    bool in_flight = false;         // a batch is between dispatch and resume
  };

  void ArmWindow(DomId parent);
  void Dispatch(DomId parent);
  void FailTicket(Ticket& ticket, const Status& why);
  void DestroyChild(DomId child);
  // Capacity (one pool) and watermark (all pools) eviction passes.
  // `released_evicted` is set when the victim equals `released`, so Release
  // can tell whether the just-parked child was reclaimed before it
  // returned.
  void EvictToCapacity(ParentState& ps, DomId released, bool* released_evicted);
  void EvictForPressure(DomId released, bool* released_evicted);
  // LRU across every parent pool: the front of the first non-empty pool in
  // parent-id order. kDomInvalid when all pools are empty.
  DomId PopGlobalLru();
  void UpdateGauges();

  Hypervisor& hv_;
  CloneEngine& engine_;
  Toolstack& toolstack_;
  EventLoop& loop_;
  SchedulerConfig config_;

  std::unique_ptr<MetricsRegistry> own_metrics_;  // set when none injected
  MetricsRegistry* metrics_;
  TraceRecorder* trace_;

  Counter& m_requests_;
  Counter& m_warm_hits_;
  Counter& m_warm_misses_;
  Counter& m_batches_;
  Counter& m_batch_failures_;
  Counter& m_rejected_;
  Counter& m_timeouts_;
  Counter& m_parked_;
  Counter& m_evictions_;
  Counter& m_evictions_pressure_;
  Counter& m_reset_fallback_;
  Counter& m_stale_drops_;
  Counter& m_feedback_transitions_;
  // Post-copy cloning: children whose stream Release() had to finish before
  // the park-side CloneReset, and the pages those finishes materialised.
  Counter& m_lazy_stream_finishes_;
  Counter& m_lazy_streamed_pages_;
  Histogram& m_batch_size_;
  Histogram& m_wait_ns_;        // acquire -> cold grant
  Histogram& m_warm_grant_ns_;  // acquire -> warm grant
  Gauge& g_queue_depth_;
  Gauge& g_pool_size_;
  Gauge& g_eviction_frozen_;

  FaultPoint* f_admit_ = nullptr;
  FaultPoint* f_dispatch_ = nullptr;
  FaultPoint* f_park_ = nullptr;

  CloneExecutor executor_;
  EvictFn evict_;

  std::map<DomId, ParentState> parents_;
  // Dispatched child -> the ticket it will serve once the child resumes.
  std::map<DomId, Ticket> awaiting_resume_;
  std::uint64_t next_ticket_id_ = 1;
  std::size_t total_queued_ = 0;
  std::size_t total_parked_ = 0;
  double window_scale_ = 1.0;
  bool eviction_frozen_ = false;
};

}  // namespace nephele

#endif  // SRC_SCHED_SCHEDULER_H_
