#include "src/sched/scheduler.h"

#include <algorithm>
#include <utility>

#include "src/base/status.h"

namespace nephele {

namespace {

MetricsRegistry* PickRegistry(const SystemServices& services,
                              std::unique_ptr<MetricsRegistry>& own) {
  if (services.metrics != nullptr) {
    return services.metrics;
  }
  own = std::make_unique<MetricsRegistry>();
  return own.get();
}

}  // namespace

CloneScheduler::CloneScheduler(Hypervisor& hv, CloneEngine& engine, Toolstack& toolstack,
                               EventLoop& loop, SchedulerConfig config,
                               const SystemServices& services)
    : hv_(hv),
      engine_(engine),
      toolstack_(toolstack),
      loop_(loop),
      config_(config),
      metrics_(PickRegistry(services, own_metrics_)),
      trace_(services.trace),
      m_requests_(metrics_->GetCounter("sched/requests_total")),
      m_warm_hits_(metrics_->GetCounter("sched/warm_hits")),
      m_warm_misses_(metrics_->GetCounter("sched/warm_misses")),
      m_batches_(metrics_->GetCounter("sched/batches_dispatched")),
      m_batch_failures_(metrics_->GetCounter("sched/batch_failures")),
      m_rejected_(metrics_->GetCounter("sched/rejected_queue_full")),
      m_timeouts_(metrics_->GetCounter("sched/timeouts")),
      m_parked_(metrics_->GetCounter("sched/parked_total")),
      m_evictions_(metrics_->GetCounter("sched/evictions")),
      m_evictions_pressure_(metrics_->GetCounter("sched/evictions_pressure")),
      m_reset_fallback_(metrics_->GetCounter("sched/reset_fallback_destroys")),
      m_stale_drops_(metrics_->GetCounter("sched/stale_pool_drops")),
      m_feedback_transitions_(metrics_->GetCounter("sched/feedback_transitions")),
      m_lazy_stream_finishes_(metrics_->GetCounter("sched/lazy_stream_finishes")),
      m_lazy_streamed_pages_(metrics_->GetCounter("sched/lazy_streamed_pages")),
      m_batch_size_(metrics_->GetHistogram("sched/batch_size", {1, 2, 4, 8, 16, 32, 64})),
      m_wait_ns_(metrics_->GetHistogram("sched/wait_ns", Histogram::DefaultLatencyBoundsNs())),
      m_warm_grant_ns_(
          metrics_->GetHistogram("sched/warm_grant_ns", Histogram::DefaultLatencyBoundsNs())),
      g_queue_depth_(metrics_->GetGauge("sched/queue_depth")),
      g_pool_size_(metrics_->GetGauge("sched/warm_pool_size")),
      g_eviction_frozen_(metrics_->GetGauge("sched/eviction_frozen")) {
  if (config_.max_batch == 0) {
    config_.max_batch = 1;
  }
  if (services.faults != nullptr) {
    f_admit_ = services.faults->GetPoint("sched/admit");
    f_dispatch_ = services.faults->GetPoint("sched/dispatch");
    f_park_ = services.faults->GetPoint("sched/park");
  }
  executor_ = [this](const CloneRequest& req) { return engine_.Clone(req); };
  evict_ = [this](DomId dom) {
    (void)toolstack_.DestroyDomain(dom);
    if (hv_.FindDomain(dom) != nullptr) {
      (void)hv_.DestroyDomain(dom);
    }
  };
  engine_.AddObserver(this);
}

CloneScheduler::~CloneScheduler() { engine_.RemoveObserver(this); }

void CloneScheduler::SetCloneExecutor(CloneExecutor executor) {
  executor_ = std::move(executor);
}

void CloneScheduler::SetEvictFn(EvictFn evict) { evict_ = std::move(evict); }

void CloneScheduler::SetBatchWindowScale(double scale) {
  window_scale_ = scale < 1.0 ? 1.0 : scale;
}

void CloneScheduler::SetEvictionFrozen(bool frozen) {
  if (frozen == eviction_frozen_) {
    return;
  }
  eviction_frozen_ = frozen;
  g_eviction_frozen_.Set(frozen ? 1 : 0);
  m_feedback_transitions_.Increment();
  if (!frozen) {
    // Catch-up sweep: restore the capacity cap on every pool, then the Dom0
    // watermark, exactly as if the parks had happened unfrozen.
    for (auto& [parent, ps] : parents_) {
      EvictToCapacity(ps, kDomInvalid, nullptr);
    }
    EvictForPressure(kDomInvalid, nullptr);
    UpdateGauges();
  }
}

std::size_t CloneScheduler::WarmPoolSize(DomId parent) const {
  auto it = parents_.find(parent);
  return it == parents_.end() ? 0 : it->second.pool.size();
}

std::size_t CloneScheduler::QueueDepth(DomId parent) const {
  auto it = parents_.find(parent);
  return it == parents_.end() ? 0 : it->second.queue.size();
}

void CloneScheduler::UpdateGauges() {
  g_queue_depth_.Set(static_cast<std::int64_t>(total_queued_));
  g_pool_size_.Set(static_cast<std::int64_t>(total_parked_));
}

Status CloneScheduler::Acquire(const CloneRequest& req, GrantCallback cb) {
  if (req.num_children == 0) {
    return ErrInvalidArgument("acquire of zero children");
  }
  if (hv_.FindDomain(req.parent) == nullptr) {
    return ErrNotFound("no such parent domain");
  }
  m_requests_.Increment(req.num_children);
  NEPHELE_RETURN_IF_ERROR(PokeFault(f_admit_));

  auto& ps = parents_[req.parent];
  // Admission is decided for the whole request before the warm pool is
  // consulted: a request the queue could not absorb is rejected outright
  // rather than half-granted.
  if (ps.queue.size() + req.num_children > config_.max_queue_depth) {
    m_rejected_.Increment();
    return ErrResourceExhausted("scheduler queue full");
  }

  unsigned remaining = req.num_children;
  const SimTime issued = loop_.Now();
  // Warm hits first, most recently parked first (its pages are the most
  // likely to still be resident/shared).
  while (remaining > 0 && !ps.pool.empty()) {
    DomId child = ps.pool.back();
    ps.pool.pop_back();
    --total_parked_;
    if (hv_.FindDomain(child) == nullptr) {
      // Destroyed behind our back without Forget(); drop the stale entry.
      m_stale_drops_.Increment();
      continue;
    }
    m_warm_hits_.Increment();
    --remaining;
    loop_.Post(SimDuration::Nanos(0), [this, cb, child, issued] {
      m_warm_grant_ns_.Observe((loop_.Now() - issued).ns());
      cb(Result<DomId>(child));
    });
  }

  if (remaining > 0) {
    m_warm_misses_.Increment(remaining);
    const DomId parent = req.parent;
    for (unsigned i = 0; i < remaining; ++i) {
      Ticket t;
      t.id = next_ticket_id_++;
      t.enqueued_at = issued;
      t.cb = cb;
      const std::uint64_t id = t.id;
      ps.queue.push_back(std::move(t));
      ++total_queued_;
      if (config_.request_timeout.ns() > 0) {
        loop_.Post(config_.request_timeout, [this, parent, id] {
          auto pit = parents_.find(parent);
          if (pit == parents_.end()) {
            return;
          }
          auto& queue = pit->second.queue;
          auto qit = std::find_if(queue.begin(), queue.end(),
                                  [id](const Ticket& q) { return q.id == id; });
          if (qit == queue.end()) {
            return;  // already dispatched, granted or failed
          }
          Ticket expired = std::move(*qit);
          queue.erase(qit);
          --total_queued_;
          m_timeouts_.Increment();
          FailTicket(expired, ErrAborted("scheduler request timed out"));
          UpdateGauges();
        });
      }
    }
    if (ps.queue.size() >= config_.max_batch) {
      // A full batch is ready: dispatch at this instant without waiting out
      // the window (through the loop, so Acquire itself stays queue-only).
      const std::uint64_t epoch = ++ps.epoch;
      ps.window_armed = false;
      loop_.Post(SimDuration::Nanos(0), [this, parent, epoch] {
        auto pit = parents_.find(parent);
        if (pit != parents_.end() && pit->second.epoch == epoch) {
          Dispatch(parent);
        }
      });
    } else if (!ps.in_flight) {
      ArmWindow(parent);
    }
    // else: a batch is in flight; its completion dispatches the backlog.
  }
  UpdateGauges();
  return Status::Ok();
}

void CloneScheduler::ArmWindow(DomId parent) {
  auto& ps = parents_[parent];
  if (ps.window_armed) {
    return;
  }
  ps.window_armed = true;
  const std::uint64_t epoch = ps.epoch;
  loop_.Post(effective_batch_window(), [this, parent, epoch] {
    auto pit = parents_.find(parent);
    if (pit == parents_.end() || pit->second.epoch != epoch) {
      return;  // a dispatch already consumed this window
    }
    pit->second.window_armed = false;
    Dispatch(parent);
  });
}

void CloneScheduler::Dispatch(DomId parent) {
  auto pit = parents_.find(parent);
  if (pit == parents_.end()) {
    return;
  }
  auto& ps = pit->second;
  if (ps.in_flight || ps.queue.empty()) {
    return;
  }
  ++ps.epoch;  // invalidate any armed window; this dispatch supersedes it
  ps.window_armed = false;

  const unsigned n =
      static_cast<unsigned>(std::min<std::size_t>(ps.queue.size(), config_.max_batch));
  std::vector<Ticket> taken;
  taken.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    taken.push_back(std::move(ps.queue.front()));
    ps.queue.pop_front();
    --total_queued_;
  }

  Status fault = PokeFault(f_dispatch_);
  const Domain* d = fault.ok() ? hv_.FindDomain(parent) : nullptr;
  if (fault.ok() && (d == nullptr || d->start_info_gfn == kInvalidGfn)) {
    fault = ErrNotFound("parent vanished before dispatch");
  }
  if (!fault.ok()) {
    m_batch_failures_.Increment();
    for (Ticket& t : taken) {
      FailTicket(t, fault);
    }
    UpdateGauges();
    if (!ps.queue.empty()) {
      ArmWindow(parent);
    }
    return;
  }

  CloneRequest req;
  req.caller = kDom0;
  req.parent = parent;
  req.start_info_mfn = d->p2m[d->start_info_gfn].mfn;
  req.num_children = n;
  req.lazy = config_.lazy_dispatch;

  TraceSpan span = trace_ != nullptr ? trace_->BeginSpan("sched/dispatch") : TraceSpan();
  span.AddArg("parent", static_cast<std::int64_t>(parent));
  span.AddArg("batch", static_cast<std::int64_t>(n));

  ps.in_flight = true;
  Result<std::vector<DomId>> children = executor_(req);
  if (!children.ok()) {
    ps.in_flight = false;
    m_batch_failures_.Increment();
    for (Ticket& t : taken) {
      FailTicket(t, children.status());
    }
    UpdateGauges();
    if (!ps.queue.empty()) {
      ArmWindow(parent);
    }
    return;
  }

  m_batches_.Increment();
  m_batch_size_.Observe(static_cast<std::int64_t>(n));
  for (std::size_t i = 0; i < children->size() && i < taken.size(); ++i) {
    awaiting_resume_[(*children)[i]] = std::move(taken[i]);
  }
  UpdateGauges();
}

void CloneScheduler::FailTicket(Ticket& ticket, const Status& why) {
  if (ticket.cb) {
    GrantCallback cb = std::move(ticket.cb);
    Status status = why;
    loop_.Post(SimDuration::Nanos(0),
               [cb = std::move(cb), status = std::move(status)] { cb(status); });
  }
}

void CloneScheduler::OnResume(DomId dom, bool is_child) {
  if (is_child) {
    auto it = awaiting_resume_.find(dom);
    if (it == awaiting_resume_.end()) {
      return;  // a direct (unscheduled) clone on the same engine
    }
    Ticket ticket = std::move(it->second);
    awaiting_resume_.erase(it);
    m_wait_ns_.Observe((loop_.Now() - ticket.enqueued_at).ns());
    if (ticket.cb) {
      ticket.cb(Result<DomId>(dom));
    }
    return;
  }
  // Parent resumed: the batch (scheduled or not) is over; drain any backlog
  // that accumulated while it was in flight.
  auto pit = parents_.find(dom);
  if (pit == parents_.end() || !pit->second.in_flight) {
    return;
  }
  pit->second.in_flight = false;
  if (!pit->second.queue.empty()) {
    Dispatch(dom);
  }
}

void CloneScheduler::OnCloneAborted(DomId /*parent*/, DomId child) {
  auto it = awaiting_resume_.find(child);
  if (it == awaiting_resume_.end()) {
    return;
  }
  Ticket ticket = std::move(it->second);
  awaiting_resume_.erase(it);
  FailTicket(ticket, ErrAborted("clone aborted before the child resumed"));
}

Result<ReleaseOutcome> CloneScheduler::Release(DomId child) {
  const Domain* d = hv_.FindDomain(child);
  if (d == nullptr) {
    return ErrNotFound("no such domain");
  }
  if (d->parent == kDomInvalid) {
    return ErrFailedPrecondition("domain is not a clone");
  }
  const DomId parent = d->parent;
  {
    auto pit = parents_.find(parent);
    if (pit != parents_.end() &&
        std::find(pit->second.pool.begin(), pit->second.pool.end(), child) !=
            pit->second.pool.end()) {
      return ErrFailedPrecondition("child is already parked");
    }
  }

  Status fault = PokeFault(f_park_);
  // A half-streamed lazy child finishes its stream before it is scrubbed
  // and parked: a warm hit must hand out a fully-mapped domain, never one
  // that still demand-faults against its parent. (CloneReset would force
  // the same finish; doing it here makes the work visible in sched/lazy_*.)
  if (fault.ok() && engine_.IsStreaming(child)) {
    const std::size_t pending = engine_.PendingStreamPages(child);
    fault = engine_.FinishStreaming(child);
    if (fault.ok()) {
      m_lazy_stream_finishes_.Increment();
      m_lazy_streamed_pages_.Increment(pending);
    }
  }
  Result<std::size_t> restored =
      fault.ok() ? engine_.CloneReset(kDom0, child) : Result<std::size_t>(fault);
  ReleaseOutcome outcome;
  if (!restored.ok()) {
    // A child we cannot scrub must not serve another request: destroy it.
    m_reset_fallback_.Increment();
    DestroyChild(child);
    outcome.parked = false;
    UpdateGauges();
    return outcome;
  }
  outcome.reset_applied = true;
  outcome.pages_restored = *restored;

  auto& ps = parents_[parent];
  ps.pool.push_back(child);
  ++total_parked_;
  m_parked_.Increment();
  outcome.parked = true;

  // Eviction passes, unless telemetry feedback froze them (thrash alarm):
  // LRU beyond the per-parent cap, then LRU across every pool until Dom0's
  // free memory is back above the watermark.
  if (!eviction_frozen_) {
    bool released_evicted = false;
    EvictToCapacity(ps, child, &released_evicted);
    EvictForPressure(child, &released_evicted);
    if (released_evicted) {
      outcome.parked = false;
    }
  }
  UpdateGauges();
  return outcome;
}

void CloneScheduler::EvictToCapacity(ParentState& ps, DomId released,
                                     bool* released_evicted) {
  while (ps.pool.size() > config_.warm_pool_capacity) {
    DomId victim = ps.pool.front();
    ps.pool.erase(ps.pool.begin());
    --total_parked_;
    m_evictions_.Increment();
    DestroyChild(victim);
    if (victim == released && released_evicted != nullptr) {
      *released_evicted = true;
    }
  }
}

void CloneScheduler::EvictForPressure(DomId released, bool* released_evicted) {
  if (config_.dom0_low_watermark_bytes == 0) {
    return;
  }
  while (toolstack_.Dom0FreeBytes() < config_.dom0_low_watermark_bytes) {
    DomId victim = PopGlobalLru();
    if (victim == kDomInvalid) {
      break;
    }
    m_evictions_.Increment();
    m_evictions_pressure_.Increment();
    DestroyChild(victim);
    if (victim == released && released_evicted != nullptr) {
      *released_evicted = true;
    }
  }
}

DomId CloneScheduler::PopGlobalLru() {
  for (auto& [parent, ps] : parents_) {
    if (!ps.pool.empty()) {
      DomId victim = ps.pool.front();
      ps.pool.erase(ps.pool.begin());
      --total_parked_;
      return victim;
    }
  }
  return kDomInvalid;
}

void CloneScheduler::DestroyChild(DomId child) {
  if (evict_) {
    evict_(child);
  }
}

void CloneScheduler::Forget(DomId dom) {
  awaiting_resume_.erase(dom);
  for (auto& [parent, ps] : parents_) {
    auto it = std::find(ps.pool.begin(), ps.pool.end(), dom);
    if (it != ps.pool.end()) {
      ps.pool.erase(it);
      --total_parked_;
    }
  }
  UpdateGauges();
}

void CloneScheduler::DrainAll() {
  for (auto& [parent, ps] : parents_) {
    while (!ps.pool.empty()) {
      DomId victim = ps.pool.back();
      ps.pool.pop_back();
      --total_parked_;
      DestroyChild(victim);
    }
    while (!ps.queue.empty()) {
      Ticket t = std::move(ps.queue.front());
      ps.queue.pop_front();
      --total_queued_;
      FailTicket(t, ErrAborted("scheduler drained"));
    }
    ps.window_armed = false;
    ++ps.epoch;
  }
  UpdateGauges();
}

}  // namespace nephele
