// ClusterScheduler: cross-host clone placement on top of the ClusterFabric.
// One CloneScheduler runs per host (same batching/warm-pool/admission
// machinery as the single-host path); this layer decides WHICH host serves
// each child of an Acquire, so the fabric's replicated parent images and
// per-host warm pools act as one cluster-wide pool:
//
//   RegisterParent  replicates the parent's image to every peer host over
//                   the fabric links (Toolstack::SnapshotDomain + MigrateIn)
//                   and returns a family handle; each host then clones from
//                   its local replica — no cross-host traffic per clone.
//   Acquire         places each requested child on a host via the pluggable
//                   PlacementFn (pack / spread / memory-pressure-aware
//                   built-ins, warm-children-first in every policy) and
//                   forwards to that host's CloneScheduler; grants come back
//                   as ClusterGrant{host, dom}.
//   Release         returns a grant to its host's warm pool, where a later
//                   Acquire on any policy can pick it up warm.
//
// Placement runs at request time against live signals (parked warm children,
// free hypervisor-pool frames, children this scheduler placed), entirely on
// the deterministic cluster loop: byte-identical across reruns and clone
// worker counts, like every other layer.

#ifndef SRC_SCHED_CLUSTER_SCHEDULER_H_
#define SRC_SCHED_CLUSTER_SCHEDULER_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/result.h"
#include "src/core/fabric.h"
#include "src/sched/scheduler.h"

namespace nephele {

// A granted child and the host it lives on.
struct ClusterGrant {
  std::size_t host = 0;
  DomId dom = kDomInvalid;
};

// The per-host signals a placement decision sees. Indexed by host; a host
// whose `eligible` bit is false (no replica of the family) must not be
// chosen.
struct PlacementQuery {
  std::size_t num_hosts = 0;
  std::size_t pack_reserve_frames = 0;
  std::vector<bool> eligible;
  std::vector<std::size_t> warm_children;    // parked replicas of this family
  std::vector<std::size_t> free_frames;      // hypervisor pool headroom
  std::vector<std::size_t> active_children;  // children this scheduler placed
};
using PlacementFn = std::function<std::size_t(const PlacementQuery&)>;

// The built-in policies (DESIGN.md §16). All of them serve from a host with
// warm children first; they differ in where cold clones land.
PlacementFn MakePlacementFn(PlacementPolicy policy);

class ClusterScheduler {
 public:
  using GrantCallback = std::function<void(Result<ClusterGrant>)>;

  // Builds one CloneScheduler per fabric host from each host's own config
  // and services; the placement policy comes from fabric.config().placement
  // until overridden with SetPlacementFn.
  explicit ClusterScheduler(ClusterFabric& fabric);

  ClusterScheduler(const ClusterScheduler&) = delete;
  ClusterScheduler& operator=(const ClusterScheduler&) = delete;

  // Replicates `parent` (which lives on `home_host`) to every peer host and
  // registers the family. Peers whose replication fails (link down, ...)
  // simply stay ineligible for this family; the call succeeds as long as
  // the home host's parent exists. Returns the family handle Acquire takes.
  Result<std::size_t> RegisterParent(std::size_t home_host, DomId parent);

  // Requests `num_children` clones of the family, each placed independently.
  // `cb` fires once per child through the cluster loop — with the grant, or
  // with the error that retired that child's request (admission, timeout,
  // batch failure). Rejections of one child do not abort the others.
  Status Acquire(std::size_t family, unsigned num_children, GrantCallback cb);

  // Returns a granted child to its host's warm pool.
  Result<ReleaseOutcome> Release(const ClusterGrant& grant);

  void SetPlacementFn(PlacementFn fn);

  CloneScheduler& host_scheduler(std::size_t host) { return *host_scheds_.at(host); }
  // The family's clone source on `host`; kDomInvalid when replication to
  // that host failed.
  DomId replica(std::size_t family, std::size_t host) const;
  std::size_t active_on(std::size_t host) const { return active_.at(host); }
  std::size_t num_families() const { return families_.size(); }

 private:
  struct Family {
    std::vector<DomId> replica_by_host;  // indexed by host
  };

  PlacementQuery BuildQuery(const Family& family);

  ClusterFabric& fabric_;
  std::vector<std::unique_ptr<CloneScheduler>> host_scheds_;
  std::vector<Family> families_;
  // Children placed and not yet released, per host. Bumped at placement
  // time (not grant time) so a burst of Acquires spreads correctly.
  std::vector<std::size_t> active_;
  PlacementFn placement_;
  Counter& m_acquires_;
  Counter& m_placements_;
  Counter& m_warm_placements_;
  Counter& m_rejected_;
  Counter& m_released_;
  Counter& m_replicas_created_;
};

}  // namespace nephele

#endif  // SRC_SCHED_CLUSTER_SCHEDULER_H_
