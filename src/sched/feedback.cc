#include "src/sched/feedback.h"

namespace nephele {

SchedulerAlarmFeedback::SchedulerAlarmFeedback(AlarmEngine& alarms, CloneScheduler& sched,
                                               std::string alarm_name)
    : alarms_(alarms), sched_(sched), alarm_name_(std::move(alarm_name)) {
  alarms_.AddObserver(this);
}

SchedulerAlarmFeedback::~SchedulerAlarmFeedback() {
  alarms_.RemoveObserver(this);
  if (engaged_) {
    sched_.SetBatchWindowScale(1.0);
    sched_.SetEvictionFrozen(false);
  }
}

void SchedulerAlarmFeedback::OnAlarmRaised(const AlarmRule& rule, std::uint64_t tick) {
  (void)tick;
  if (rule.name != alarm_name_ || engaged_) {
    return;
  }
  engaged_ = true;
  sched_.SetBatchWindowScale(sched_.config().thrash_window_multiplier);
  sched_.SetEvictionFrozen(true);
}

void SchedulerAlarmFeedback::OnAlarmCleared(const AlarmRule& rule, std::uint64_t tick) {
  (void)tick;
  if (rule.name != alarm_name_ || !engaged_) {
    return;
  }
  engaged_ = false;
  sched_.SetBatchWindowScale(1.0);
  sched_.SetEvictionFrozen(false);
}

}  // namespace nephele
