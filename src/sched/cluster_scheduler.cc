#include "src/sched/cluster_scheduler.h"

#include <limits>

namespace nephele {

namespace {

constexpr std::size_t kNoHost = std::numeric_limits<std::size_t>::max();

// Lowest-indexed eligible host satisfying `pred`; kNoHost when none does.
template <typename Pred>
std::size_t FirstEligible(const PlacementQuery& q, Pred pred) {
  for (std::size_t i = 0; i < q.num_hosts; ++i) {
    if (q.eligible[i] && pred(i)) {
      return i;
    }
  }
  return kNoHost;
}

// Eligible host minimizing `key(i)` (ties: lowest index), restricted to
// hosts satisfying `pred`.
template <typename Key, typename Pred>
std::size_t BestEligible(const PlacementQuery& q, Key key, Pred pred) {
  std::size_t best = kNoHost;
  for (std::size_t i = 0; i < q.num_hosts; ++i) {
    if (!q.eligible[i] || !pred(i)) {
      continue;
    }
    if (best == kNoHost || key(i) < key(best)) {
      best = i;
    }
  }
  return best;
}

}  // namespace

PlacementFn MakePlacementFn(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kPack:
      return [](const PlacementQuery& q) -> std::size_t {
        // Warm children trump packing: a parked clone is cheaper than any
        // cold one, wherever it sits.
        if (std::size_t h = FirstEligible(q, [&](std::size_t i) { return q.warm_children[i] > 0; });
            h != kNoHost) {
          return h;
        }
        // Fill the lowest-indexed host until its frame pool dips below the
        // reserve, then spill to the next.
        if (std::size_t h = FirstEligible(
                q, [&](std::size_t i) { return q.free_frames[i] > q.pack_reserve_frames; });
            h != kNoHost) {
          return h;
        }
        // Every host is under reserve: take the least-pressured one.
        return BestEligible(
            q, [&](std::size_t i) { return std::numeric_limits<std::size_t>::max() - q.free_frames[i]; },
            [](std::size_t) { return true; });
      };
    case PlacementPolicy::kSpread:
      return [](const PlacementQuery& q) -> std::size_t {
        // Among warm hosts, least loaded; else least loaded overall.
        if (std::size_t h = BestEligible(
                q, [&](std::size_t i) { return q.active_children[i]; },
                [&](std::size_t i) { return q.warm_children[i] > 0; });
            h != kNoHost) {
          return h;
        }
        return BestEligible(
            q, [&](std::size_t i) { return q.active_children[i]; },
            [](std::size_t) { return true; });
      };
    case PlacementPolicy::kMemoryAware:
      return [](const PlacementQuery& q) -> std::size_t {
        const auto room = [&](std::size_t i) {
          return std::numeric_limits<std::size_t>::max() - q.free_frames[i];
        };
        if (std::size_t h = BestEligible(q, room,
                                         [&](std::size_t i) { return q.warm_children[i] > 0; });
            h != kNoHost) {
          return h;
        }
        return BestEligible(q, room, [](std::size_t) { return true; });
      };
  }
  return nullptr;  // unreachable: -Werror=switch covers every policy
}

ClusterScheduler::ClusterScheduler(ClusterFabric& fabric)
    : fabric_(fabric),
      active_(fabric.num_hosts(), 0),
      placement_(MakePlacementFn(fabric.config().placement)),
      m_acquires_(fabric.metrics().GetCounter("cluster/acquires_total")),
      m_placements_(fabric.metrics().GetCounter("cluster/placements_total")),
      m_warm_placements_(fabric.metrics().GetCounter("cluster/warm_placements")),
      m_rejected_(fabric.metrics().GetCounter("cluster/rejected_total")),
      m_released_(fabric.metrics().GetCounter("cluster/released_total")),
      m_replicas_created_(fabric.metrics().GetCounter("cluster/replicas_created")) {
  host_scheds_.reserve(fabric.num_hosts());
  for (std::size_t i = 0; i < fabric.num_hosts(); ++i) {
    host_scheds_.push_back(std::make_unique<CloneScheduler>(fabric.host(i)));
  }
}

Result<std::size_t> ClusterScheduler::RegisterParent(std::size_t home_host, DomId parent) {
  if (home_host >= fabric_.num_hosts()) {
    return ErrInvalidArgument("no such host");
  }
  if (fabric_.host(home_host).hypervisor().FindDomain(parent) == nullptr) {
    return ErrNotFound("no such domain on the home host");
  }
  Family fam;
  fam.replica_by_host.assign(fabric_.num_hosts(), kDomInvalid);
  fam.replica_by_host[home_host] = parent;
  // Peers a replica cannot reach (partition, injected link fault) simply
  // stay ineligible for this family; placement routes around them.
  for (std::size_t peer = 0; peer < fabric_.num_hosts(); ++peer) {
    if (peer == home_host) {
      continue;
    }
    auto replica = fabric_.ReplicateParent(parent, home_host, peer);
    if (replica.ok()) {
      fam.replica_by_host[peer] = *replica;
      m_replicas_created_.Increment();
    }
  }
  families_.push_back(std::move(fam));
  return families_.size() - 1;
}

PlacementQuery ClusterScheduler::BuildQuery(const Family& family) {
  PlacementQuery q;
  q.num_hosts = fabric_.num_hosts();
  q.pack_reserve_frames = fabric_.config().pack_reserve_frames;
  q.eligible.resize(q.num_hosts);
  q.warm_children.resize(q.num_hosts);
  q.free_frames.resize(q.num_hosts);
  q.active_children.resize(q.num_hosts);
  for (std::size_t i = 0; i < q.num_hosts; ++i) {
    const DomId replica = family.replica_by_host[i];
    q.eligible[i] = replica != kDomInvalid;
    q.warm_children[i] = q.eligible[i] ? host_scheds_[i]->WarmPoolSize(replica) : 0;
    q.free_frames[i] = fabric_.host(i).hypervisor().FreePoolFrames();
    q.active_children[i] = active_[i];
  }
  return q;
}

Status ClusterScheduler::Acquire(std::size_t family, unsigned num_children, GrantCallback cb) {
  if (family >= families_.size()) {
    return ErrInvalidArgument("no such family");
  }
  if (num_children == 0) {
    return ErrInvalidArgument("num_children must be > 0");
  }
  m_acquires_.Increment();
  const Family& fam = families_[family];
  for (unsigned child = 0; child < num_children; ++child) {
    const PlacementQuery q = BuildQuery(fam);
    const std::size_t host = placement_ ? placement_(q) : kNoHost;
    if (host >= q.num_hosts || !q.eligible[host]) {
      m_rejected_.Increment();
      fabric_.loop().Post(SimDuration::Nanos(0), [cb] {
        cb(ErrUnavailable("no eligible host for this family"));
      });
      continue;
    }
    m_placements_.Increment();
    if (q.warm_children[host] > 0) {
      m_warm_placements_.Increment();
    }
    ++active_[host];
    const DomId replica = fam.replica_by_host[host];
    Status admitted = host_scheds_[host]->Acquire(
        {kDom0, replica, kInvalidMfn, 1}, [this, host, cb](Result<DomId> granted) {
          if (granted.ok()) {
            cb(ClusterGrant{host, *granted});
            return;
          }
          --active_[host];
          m_rejected_.Increment();
          cb(granted.status());
        });
    if (!admitted.ok()) {
      // Synchronous admission rejection: the per-host callback never fires.
      --active_[host];
      m_rejected_.Increment();
      fabric_.loop().Post(SimDuration::Nanos(0), [cb, admitted] { cb(admitted); });
    }
  }
  return Status::Ok();
}

Result<ReleaseOutcome> ClusterScheduler::Release(const ClusterGrant& grant) {
  if (grant.host >= host_scheds_.size()) {
    return ErrInvalidArgument("no such host");
  }
  auto outcome = host_scheds_[grant.host]->Release(grant.dom);
  if (outcome.ok()) {
    if (active_[grant.host] > 0) {
      --active_[grant.host];
    }
    m_released_.Increment();
  }
  return outcome;
}

void ClusterScheduler::SetPlacementFn(PlacementFn fn) { placement_ = std::move(fn); }

DomId ClusterScheduler::replica(std::size_t family, std::size_t host) const {
  if (family >= families_.size() || host >= families_[family].replica_by_host.size()) {
    return kDomInvalid;
  }
  return families_[family].replica_by_host[host];
}

}  // namespace nephele
