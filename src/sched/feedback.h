// SchedulerAlarmFeedback: the closed loop between the telemetry pipeline
// and the clone scheduler. Registered as a TsdbObserver on an AlarmEngine,
// it reacts to the `warm_pool_thrash` alarm (the rate of sched/evictions —
// the pool shedding children it is about to need again):
//
//   raised   ->  batch window stretched by SchedulerConfig::
//                thrash_window_multiplier (wider windows coalesce more
//                requests per batch) and LRU eviction frozen (the pool
//                keeps its warm children while churn persists)
//   cleared  ->  window scale back to 1 and eviction unfrozen; the
//                scheduler's catch-up sweep trims every pool back under
//                its caps
//
// The adapter is policy only — all mechanism lives behind
// CloneScheduler::SetBatchWindowScale / SetEvictionFrozen, so tests and
// operators can drive the same levers directly.

#ifndef SRC_SCHED_FEEDBACK_H_
#define SRC_SCHED_FEEDBACK_H_

#include <cstdint>
#include <string>

#include "src/obs/tsdb/alarm.h"
#include "src/obs/tsdb/tsdb.h"
#include "src/sched/scheduler.h"

namespace nephele {

class SchedulerAlarmFeedback : public TsdbObserver {
 public:
  // Registers itself on `alarms`; reacts to transitions of the alarm named
  // `alarm_name` (default: the stock warm-pool-thrash rule).
  SchedulerAlarmFeedback(AlarmEngine& alarms, CloneScheduler& sched,
                         std::string alarm_name = "warm_pool_thrash");
  ~SchedulerAlarmFeedback() override;

  SchedulerAlarmFeedback(const SchedulerAlarmFeedback&) = delete;
  SchedulerAlarmFeedback& operator=(const SchedulerAlarmFeedback&) = delete;

  const std::string& alarm_name() const { return alarm_name_; }
  bool engaged() const { return engaged_; }

  void OnAlarmRaised(const AlarmRule& rule, std::uint64_t tick) override;
  void OnAlarmCleared(const AlarmRule& rule, std::uint64_t tick) override;

 private:
  AlarmEngine& alarms_;
  CloneScheduler& sched_;
  std::string alarm_name_;
  bool engaged_ = false;
};

}  // namespace nephele

#endif  // SRC_SCHED_FEEDBACK_H_
