// Redis-style COW snapshotting (the Sec. 7.1 use case):
// a Redis-like unikernel serves SETs while BGSAVE fork()s a clone that
// serializes the database to the 9pfs share and exits — the parent keeps
// serving, and writes after the fork do not leak into the snapshot.
//
//   $ ./examples/redis_snapshot

#include <cstdio>

#include "src/apps/redis_app.h"
#include "src/guest/guest_manager.h"

using namespace nephele;

int main() {
  NepheleSystem system;
  GuestManager guests(system);

  DomainConfig cfg;
  cfg.name = "redis";
  cfg.memory_mb = 64;
  cfg.max_clones = 8;
  cfg.with_p9fs = true;  // dump target: the Dom0 ramdisk-backed share

  auto dom = guests.Launch(cfg, std::make_unique<RedisApp>(RedisConfig{}));
  if (!dom.ok()) {
    std::fprintf(stderr, "launch failed: %s\n", dom.status().ToString().c_str());
    return 1;
  }
  system.Settle();
  auto* redis = dynamic_cast<RedisApp*>(guests.AppOf(*dom));
  GuestContext* ctx = guests.ContextOf(*dom);

  (void)redis->MassInsert(*ctx, 50'000);
  (void)redis->Set(*ctx, "checkpoint", "v1");
  std::printf("[redis] dom%u holds %zu keys (%zu KiB)\n", *dom, redis->num_keys(),
              redis->dataset_bytes() / 1024);

  DomId saver = kDomInvalid;
  redis->set_on_saved([&](DomId child) { saver = child; });

  SimTime t0 = system.Now();
  if (Status s = redis->Save(*ctx); !s.ok()) {
    std::fprintf(stderr, "BGSAVE failed: %s\n", s.ToString().c_str());
    return 1;
  }
  // The parent keeps mutating while the clone serializes.
  (void)redis->Set(*ctx, "checkpoint", "v2-after-fork");
  system.Settle();

  auto dump_size = system.devices().hostfs().SizeOf(cfg.p9_export + "/dump.rdb");
  std::printf("[host ] BGSAVE by clone dom%u finished in %.1f ms; dump.rdb = %zu KiB\n", saver,
              (system.Now() - t0).ToMillis(), *dump_size / 1024);
  std::printf("[redis] parent still live, checkpoint = %s (snapshot saw v1)\n",
              redis->Get("checkpoint")->c_str());
  std::printf("[host ] saver clone destroyed: %s\n", guests.Alive(saver) ? "no" : "yes");
  return dump_size.ok() && !guests.Alive(saver) ? 0 : 2;
}
