// Fork-join data parallelism on unikernel clones: the parent loads a
// dataset, fork()s four workers, each checksums its shard of the COW-shared
// data and reports over an IDC message queue; the workers exit, the parent
// aggregates. fork() + IDC exactly as a POSIX process pool would use
// fork() + pipes (Sec. 2 / 4.3).
//
//   $ ./examples/forkjoin_sum

#include <cstdio>

#include "src/apps/forkjoin_app.h"
#include "src/guest/guest_manager.h"

using namespace nephele;

int main() {
  NepheleSystem system;
  GuestManager guests(system);

  ForkJoinConfig fj;
  fj.dataset_kb = 512;
  fj.workers = 4;

  DomainConfig cfg;
  cfg.name = "forkjoin";
  cfg.memory_mb = 8;
  cfg.max_clones = fj.workers;
  cfg.with_vif = false;

  std::uint64_t total = 0;
  unsigned reported = 0;
  auto app = std::make_unique<ForkJoinApp>(fj);
  ForkJoinApp* raw = app.get();
  app->set_on_done([&](std::uint64_t t, unsigned w) {
    total = t;
    reported = w;
  });

  SimTime t0 = system.Now();
  auto dom = guests.Launch(cfg, std::move(app));
  if (!dom.ok()) {
    std::fprintf(stderr, "launch failed: %s\n", dom.status().ToString().c_str());
    return 1;
  }
  system.Settle();

  std::printf("dataset: %zu KiB, workers: %u clones of dom%u\n", fj.dataset_kb, fj.workers,
              *dom);
  std::printf("collected %u partial sums -> total %llu (expected %llu) in %.1f ms\n", reported,
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(raw->ExpectedSum()),
              (system.Now() - t0).ToMillis());
  std::printf("workers exited; guests alive: %zu; COW pages copied in family: %llu\n",
              guests.NumGuests(),
              static_cast<unsigned long long>(system.hypervisor().total_cow_faults()));
  return total == raw->ExpectedSum() && reported == fj.workers ? 0 : 2;
}
