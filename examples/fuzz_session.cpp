// KFX-style fuzzing with cloning (the Sec. 7.2 use case): clone the target
// once, instrument the clone with clone_cow, run AFL inputs against it and
// restore its memory with clone_reset between iterations.
//
//   $ ./examples/fuzz_session

#include <cstdio>

#include "src/apps/fuzz_target_app.h"
#include "src/fuzz/kfx.h"
#include "src/guest/guest_manager.h"

using namespace nephele;

int main() {
  NepheleSystem system;
  GuestManager guests(system);

  DomainConfig cfg;
  cfg.name = "syscall-target";
  cfg.memory_mb = 8;
  cfg.max_clones = 16;
  cfg.with_vif = false;  // the adapter feeds on AFL bytes, not packets
  auto target = guests.Launch(cfg, std::make_unique<FuzzTargetApp>(FuzzTargetConfig{}));
  if (!target.ok()) {
    std::fprintf(stderr, "launch failed: %s\n", target.status().ToString().c_str());
    return 1;
  }
  system.Settle();

  AflEngine afl(/*seed=*/1234);
  afl.AddSeed({0, 0, 0, 0, 4, 2, 0, 0});
  KfxHarness harness(guests, afl);
  if (Status s = harness.Setup(*target); !s.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("fuzzing dom%u through instrumented clone dom%u\n", *target,
              harness.clone_dom());

  SimTime t0 = system.Now();
  const int kIterations = 5000;
  std::size_t crashes = 0;
  for (int i = 0; i < kIterations; ++i) {
    auto it = harness.RunIteration();
    if (!it.ok()) {
      std::fprintf(stderr, "iteration failed: %s\n", it.status().ToString().c_str());
      return 1;
    }
    crashes += it->crashed ? 1 : 0;
    if ((i + 1) % 1000 == 0) {
      std::printf("  %5d execs | %4zu edges | %4zu crashing inputs | queue %zu\n", i + 1,
                  afl.edges_covered(), crashes, afl.queue_size());
    }
  }
  double execs_per_s = kIterations / (system.Now() - t0).ToSeconds();
  std::printf("throughput: %.0f executions/s (paper: ~470 exec/s with cloning,\n",
              execs_per_s);
  std::printf("            vs ~2 exec/s when re-booting a VM per input)\n");
  return 0;
}
