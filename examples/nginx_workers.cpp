// NGINX-style worker scaling (the Sec. 7.1 use case):
// a master unikernel fork()s three worker clones; a Dom0 bond load-balances
// HTTP connections across the MAC/IP-identical family; we fire requests and
// watch them spread across workers.
//
//   $ ./examples/nginx_workers

#include <cstdio>

#include "src/apps/nginx_app.h"
#include "src/guest/guest_manager.h"
#include "src/net/switch.h"

using namespace nephele;

int main() {
  NepheleSystem system;
  GuestManager guests(system);
  Bond bond;
  system.toolstack().SetDefaultSwitch(&bond);

  int replies = 0;
  bond.set_uplink_sink([&](const Packet& p) {
    if (p.src_port == 80) {
      ++replies;
    }
  });

  DomainConfig cfg;
  cfg.name = "nginx";
  cfg.memory_mb = 16;
  cfg.max_clones = 8;
  NginxConfig ncfg;
  ncfg.workers = 4;  // master + 3 clones, one per core

  auto master = guests.Launch(cfg, std::make_unique<NginxApp>(ncfg));
  if (!master.ok()) {
    std::fprintf(stderr, "launch failed: %s\n", master.status().ToString().c_str());
    return 1;
  }
  system.Settle();

  const Domain* m = system.hypervisor().FindDomain(*master);
  std::printf("master dom%u forked %zu workers; bond aggregates %zu vifs\n", *master,
              m->children.size(), bond.num_ports());

  // 120 requests from distinct client ports.
  GuestDevices* gd = system.toolstack().FindDevices(*master);
  for (std::uint16_t i = 0; i < 120; ++i) {
    Packet req;
    req.proto = IpProto::kTcp;
    req.src_ip = MakeIpv4(10, 8, 255, 1);
    req.src_port = static_cast<std::uint16_t>(40000 + i);
    req.dst_ip = gd->net->ip();
    req.dst_port = 80;
    static const char kGet[] = "GET /";
    req.payload.assign(kGet, kGet + sizeof(kGet) - 1);
    bond.InjectFromUplink(req);
  }
  system.Settle();

  std::printf("served %d/120 requests; per-worker breakdown:\n", replies);
  auto print_worker = [&](DomId dom) {
    auto* app = dynamic_cast<NginxApp*>(guests.AppOf(dom));
    std::printf("  dom%-3u (%s) served %llu requests\n", dom,
                dom == *master ? "master" : "clone ",
                static_cast<unsigned long long>(app->requests_served()));
  };
  print_worker(*master);
  for (DomId c : m->children) {
    print_worker(c);
  }
  return replies == 120 ? 0 : 2;
}
