// Quickstart: boot a Mini-OS-style UDP server unikernel, then clone it —
// the 30-second tour of the Nephele API.
//
//   $ ./examples/quickstart
//
// Walks through: system bring-up, booting a guest, watching its readiness
// packet arrive on the host uplink, fork()ing it from inside the guest, and
// comparing boot vs. clone latency and memory footprint.

#include <cstdio>

#include "src/apps/udp_ready_app.h"
#include "src/core/system.h"
#include "src/guest/guest_manager.h"
#include "src/net/switch.h"

using namespace nephele;

int main() {
  // 1. Bring up the virtualization environment: hypervisor (12 GiB guest
  //    pool), Xenstore, device backends, toolstack, clone engine, xencloned.
  NepheleSystem system;
  GuestManager guests(system);

  // 2. A bond in Dom0 aggregates the (MAC/IP-identical) vifs of the family.
  Bond bond;
  system.toolstack().SetDefaultSwitch(&bond);

  // The benchmark host listens on the uplink for readiness packets.
  int ready_count = 0;
  SimTime last_ready;
  bond.set_uplink_sink([&](const Packet& p) {
    if (p.dst_port == 9999) {
      ++ready_count;
      last_ready = system.Now();
      std::printf("[host] ready packet #%d from %s (t = %.2f ms)\n", ready_count,
                  Ipv4ToString(p.src_ip).c_str(), system.Now().ToMillis());
    }
  });

  // 3. Boot the guest: 4 MiB of memory, one vif, cloning enabled.
  DomainConfig config;
  config.name = "udp-server";
  config.memory_mb = 4;
  config.max_clones = 8;

  SimTime boot_start = system.Now();
  auto dom = guests.Launch(config, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  if (!dom.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", dom.status().ToString().c_str());
    return 1;
  }
  system.Settle();
  SimDuration boot_time = last_ready - boot_start;
  std::printf("[host] booted dom%u in %.2f ms\n", *dom, boot_time.ToMillis());

  // 4. fork() from inside the guest. The continuation runs on both sides.
  SimTime clone_start = system.Now();
  GuestContext* ctx = guests.ContextOf(*dom);
  Status s = ctx->Fork(1, [](GuestContext& fctx, GuestApp& self, const ForkResult& r) {
    if (r.is_child) {
      std::printf("[dom%u] I am the clone (rax=1); announcing readiness\n", fctx.id());
      static_cast<UdpReadyApp&>(self).SendReady(fctx);
    } else {
      std::printf("[dom%u] I am the parent (rax=0); child is dom%u\n", fctx.id(),
                  r.children.front());
    }
  });
  if (!s.ok()) {
    std::fprintf(stderr, "fork failed: %s\n", s.ToString().c_str());
    return 1;
  }
  system.Settle();
  SimDuration clone_time = last_ready - clone_start;
  std::printf("[host] cloned in %.2f ms (%.1fx faster than boot)\n", clone_time.ToMillis(),
              boot_time.ToMillis() / clone_time.ToMillis());

  // 5. Memory accounting: the clone shares all non-private pages COW.
  Hypervisor& hv = system.hypervisor();
  const Domain* parent = hv.FindDomain(*dom);
  DomId child = parent->children.front();
  std::printf("[host] parent owns %.2f MiB, clone owns %.2f MiB (of a %zu MiB guest)\n",
              static_cast<double>(hv.DomainOwnedFrames(*dom) * kPageSize) / (1 << 20),
              static_cast<double>(hv.DomainOwnedFrames(child) * kPageSize) / (1 << 20),
              config.memory_mb);
  std::printf("[host] frames saved by COW sharing: %zu (%.2f MiB)\n",
              hv.frames().frames_saved_by_sharing(),
              static_cast<double>(hv.frames().frames_saved_by_sharing() * kPageSize) / (1 << 20));
  return ready_count == 2 ? 0 : 2;
}
