// xl_shell — an xl-like command-line front end over the toolstack and the
// cloning engine. Reads one command per line from stdin:
//
//   create <name> [mem_mb] [max_clones]   boot a UDP-server unikernel
//   clone <domid> [n]                     fork a guest n times
//   list                                  ps-style domain listing
//   info                                  pool / sharing statistics
//   save <domid>                          save to an in-memory image
//   restore <name>                        restore the image saved as <name>
//   destroy <domid>                       tear a guest down
//   pin <domid> <cpus>                    spread the family across cpus
//   console <domid>                       dump a guest's console output
//   help / quit
//
// Demo: echo -e "create web 8 4\nclone 1 2\nlist\ninfo" | ./examples/xl_shell

#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>

#include "src/apps/udp_ready_app.h"
#include "src/core/smp.h"
#include "src/guest/guest_manager.h"

using namespace nephele;

namespace {

const char kHelp[] =
    "commands: create <name> [mem_mb] [max_clones] | clone <domid> [n] | list | info |\n"
    "          save <domid> | restore <name> | destroy <domid> | pin <domid> <cpus> |\n"
    "          console <domid> | help | quit\n";

class XlShell {
 public:
  XlShell() : guests_(system_) {}

  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') {
      return true;
    }
    if (cmd == "quit" || cmd == "exit") {
      return false;
    }
    if (cmd == "help") {
      std::fputs(kHelp, stdout);
    } else if (cmd == "create") {
      Create(in);
    } else if (cmd == "clone") {
      Clone(in);
    } else if (cmd == "list") {
      List();
    } else if (cmd == "info") {
      Info();
    } else if (cmd == "save") {
      Save(in);
    } else if (cmd == "restore") {
      Restore(in);
    } else if (cmd == "destroy") {
      Destroy(in);
    } else if (cmd == "pin") {
      Pin(in);
    } else if (cmd == "console") {
      Console(in);
    } else {
      std::printf("unknown command '%s'\n%s", cmd.c_str(), kHelp);
    }
    system_.Settle();
    return true;
  }

 private:
  void Create(std::istringstream& in) {
    DomainConfig cfg;
    std::size_t mem = 4;
    unsigned max_clones = 64;
    in >> cfg.name >> mem >> max_clones;
    if (cfg.name.empty()) {
      std::printf("usage: create <name> [mem_mb] [max_clones]\n");
      return;
    }
    cfg.memory_mb = mem;
    cfg.max_clones = max_clones;
    SimTime t0 = system_.Now();
    auto dom = guests_.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
    system_.Settle();
    if (!dom.ok()) {
      std::printf("create failed: %s\n", dom.status().ToString().c_str());
      return;
    }
    std::printf("created dom%u '%s' in %.1f ms\n", *dom, cfg.name.c_str(),
                (system_.Now() - t0).ToMillis());
  }

  void Clone(std::istringstream& in) {
    unsigned domid = 0, n = 1;
    in >> domid >> n;
    GuestContext* ctx = guests_.ContextOf(static_cast<DomId>(domid));
    if (ctx == nullptr) {
      std::printf("no such guest dom%u\n", domid);
      return;
    }
    SimTime t0 = system_.Now();
    Status s = ctx->Fork(n, nullptr);
    system_.Settle();
    if (!s.ok()) {
      std::printf("clone failed: %s\n", s.ToString().c_str());
      return;
    }
    const Domain* d = system_.hypervisor().FindDomain(static_cast<DomId>(domid));
    std::printf("cloned dom%u -> ", domid);
    for (std::size_t i = d->children.size() - n; i < d->children.size(); ++i) {
      std::printf("dom%u ", d->children[i]);
    }
    std::printf("in %.1f ms\n", (system_.Now() - t0).ToMillis());
  }

  void List() {
    std::printf("%-6s %-22s %-8s %-8s %-8s %s\n", "domid", "name", "mem", "state", "parent",
                "clones");
    for (DomId id : system_.hypervisor().DomainIds()) {
      const Domain* d = system_.hypervisor().FindDomain(id);
      const char* state = d->state == DomainState::kRunning ? "running"
                          : d->IsPaused()                   ? "paused"
                                                            : "dying";
      char parent[16] = "-";
      if (d->parent != kDomInvalid) {
        std::snprintf(parent, sizeof(parent), "dom%u", d->parent);
      }
      std::printf("%-6u %-22s %-8zu %-8s %-8s %zu\n", id, d->name.c_str(),
                  d->tot_pages() * kPageSize / kMiB, state, parent, d->children.size());
    }
  }

  void Info() {
    Hypervisor& hv = system_.hypervisor();
    std::printf("pool: %zu / %zu MiB free\n", hv.FreePoolFrames() * kPageSize / kMiB,
                hv.TotalPoolFrames() * kPageSize / kMiB);
    std::printf("dom0: %zu MiB free\n", system_.toolstack().Dom0FreeBytes() / kMiB);
    std::printf("shared frames: %zu (%zu MiB saved by COW)\n", hv.frames().shared_frames(),
                hv.frames().frames_saved_by_sharing() * kPageSize / kMiB);
    std::printf("cow faults: %llu, clones: %llu, xenstore entries: %zu\n",
                static_cast<unsigned long long>(hv.total_cow_faults()),
                static_cast<unsigned long long>(system_.clone_engine().stats().clones),
                system_.xenstore().NumEntries());
  }

  void Save(std::istringstream& in) {
    unsigned domid = 0;
    in >> domid;
    auto image = system_.toolstack().SaveDomain(static_cast<DomId>(domid));
    if (!image.ok()) {
      std::printf("save failed: %s\n", image.status().ToString().c_str());
      return;
    }
    images_[image->config.name] = *image;
    std::printf("saved dom%u as image '%s' (%zu pages)\n", domid, image->config.name.c_str(),
                image->pages);
  }

  void Restore(std::istringstream& in) {
    std::string name;
    in >> name;
    auto it = images_.find(name);
    if (it == images_.end()) {
      std::printf("no image '%s'\n", name.c_str());
      return;
    }
    auto dom = guests_.Restore(it->second, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
    system_.Settle();
    if (!dom.ok()) {
      std::printf("restore failed: %s\n", dom.status().ToString().c_str());
      return;
    }
    std::printf("restored '%s' as dom%u\n", name.c_str(), *dom);
  }

  void Destroy(std::istringstream& in) {
    unsigned domid = 0;
    in >> domid;
    Status s = guests_.Destroy(static_cast<DomId>(domid));
    std::printf("%s\n", s.ok() ? "destroyed" : s.ToString().c_str());
  }

  void Pin(std::istringstream& in) {
    unsigned domid = 0;
    int cpus = 4;
    in >> domid >> cpus;
    auto pinned = PinFamilyAcrossCpus(system_.hypervisor(), static_cast<DomId>(domid), cpus);
    if (!pinned.ok()) {
      std::printf("pin failed: %s\n", pinned.status().ToString().c_str());
      return;
    }
    std::printf("pinned %zu family members across %d cpus\n", *pinned, cpus);
  }

  void Console(std::istringstream& in) {
    unsigned domid = 0;
    in >> domid;
    auto out = system_.devices().console().Output(static_cast<DomId>(domid));
    if (!out.ok()) {
      std::printf("no console for dom%u\n", domid);
      return;
    }
    std::printf("--- console dom%u ---\n%s\n", domid, out->c_str());
  }

  NepheleSystem system_;
  GuestManager guests_;
  std::map<std::string, DomainImage> images_;
};

}  // namespace

int main() {
  XlShell shell;
  std::string line;
  bool got_input = false;
  while (std::getline(std::cin, line)) {
    got_input = true;
    if (!shell.Dispatch(line)) {
      break;
    }
  }
  if (!got_input) {
    std::fputs(kHelp, stdout);
    // Self-demo when run without input.
    for (const char* cmd : {"create web 8 8", "clone 1 2", "list", "info"}) {
      std::printf("xl> %s\n", cmd);
      shell.Dispatch(cmd);
    }
  }
  return 0;
}
