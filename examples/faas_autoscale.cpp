// FaaS autoscaling on unikernel clones (the Sec. 7.3 use case): an
// OpenFaaS-like gateway scales a Python hello-world function; every new
// instance is a clone of the first, ready within seconds instead of the
// container's image-pull-dominated half minute.
//
//   $ ./examples/faas_autoscale

#include <cstdio>

#include "src/faas/gateway.h"

using namespace nephele;

int main() {
  SystemConfig scfg;
  scfg.hypervisor.pool_frames = 1024 * 1024;
  NepheleSystem system(scfg);
  GuestManager guests(system);
  (void)system.devices().hostfs().CreateFile("/srv/guest-root/python3");

  UnikernelBackend unikernels(guests, UnikernelBackend::Config{});
  OpenFaasGateway gateway(system.loop(), unikernels, GatewayConfig{});

  std::printf("driving 65 req/s against a 10-RPS-per-instance scaling threshold...\n");
  GatewayRunResult result =
      gateway.Run(SimDuration::Seconds(90), [](double) { return 65.0; });

  std::printf("\n  t(s)  ready  served(rps)  memory(MB)\n");
  for (std::size_t i = 9; i < result.series.size(); i += 10) {
    const GatewaySample& s = result.series[i];
    std::printf("  %4.0f  %5zu  %11.0f  %10.1f\n", s.t_seconds, s.instances_ready,
                s.served_rps, s.memory_mb);
  }
  std::printf("\ninstances reported ready at:");
  for (double t : result.readiness_times) {
    std::printf(" %.0fs", t);
  }
  std::printf("\n(paper: unikernels at ~3/14/25 s vs containers at ~33/42/56 s)\n");

  // Every instance beyond the first is a clone of instance 0.
  const auto& instances = unikernels.instances();
  for (std::size_t i = 1; i < instances.size(); ++i) {
    if (!system.hypervisor().IsDescendantOf(instances[i], instances[0])) {
      std::fprintf(stderr, "instance %zu is not a clone!\n", i);
      return 2;
    }
  }
  std::printf("%zu instances, %zu of them clones of dom%u\n", instances.size(),
              instances.size() - 1, instances[0]);
  return 0;
}
