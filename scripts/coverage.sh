#!/usr/bin/env bash
# Line-coverage gate for the clone-critical directories.
#
# Builds the suite with -DNEPHELE_COVERAGE=ON (gcov instrumentation), runs
# ctest, aggregates line coverage over src/core/ + src/hypervisor/ (headers
# included, merged across every object that compiled them) and fails when
# the percentage drops below scripts/coverage_baseline.txt.
#
# Usage:
#   scripts/coverage.sh                    # gate against the baseline
#   NEPHELE_UPDATE_BASELINE=1 scripts/coverage.sh   # re-record the baseline

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-cov
BASELINE=scripts/coverage_baseline.txt
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==== [coverage] configure + build ===="
cmake -B "${BUILD}" -S . -DNEPHELE_COVERAGE=ON >/dev/null
cmake --build "${BUILD}" -j "${JOBS}" --target all >/dev/null

# Fresh counters: coverage must reflect exactly this run.
find "${BUILD}" -name '*.gcda' -delete

echo "==== [coverage] ctest ===="
(cd "${BUILD}" && ctest -j "${JOBS}" -LE stress --output-on-failure >/dev/null)

echo "==== [coverage] aggregate src/core + src/hypervisor ===="
python3 - "${BUILD}" "${BASELINE}" <<'PYEOF'
import json
import os
import subprocess
import sys

build, baseline_path = sys.argv[1], sys.argv[2]
repo = os.getcwd()
targets = (os.path.join(repo, "src", "core") + os.sep,
           os.path.join(repo, "src", "hypervisor") + os.sep)

# line -> covered, merged with max() across every object file that compiled
# the line (a header hit in any translation unit counts as covered).
lines = {}
gcda = []
for root, _, names in os.walk(build):
    gcda.extend(os.path.join(root, n) for n in names if n.endswith(".gcda"))
if not gcda:
    sys.exit("no .gcda files found: did ctest run?")

for path in sorted(gcda):
    out = subprocess.run(["gcov", "--json-format", "--stdout", path],
                         capture_output=True, check=True).stdout
    for chunk in out.splitlines():  # one JSON document per .gcda on stdout
        data = json.loads(chunk)
        for f in data.get("files", []):
            name = f["file"]
            if not name.startswith(targets):
                continue
            for ln in f["lines"]:
                key = (name, ln["line_number"])
                lines[key] = max(lines.get(key, 0), ln["count"])

total = len(lines)
covered = sum(1 for c in lines.values() if c > 0)
if total == 0:
    sys.exit("no instrumented lines under src/core or src/hypervisor")
pct = 100.0 * covered / total
print(f"lines: {covered}/{total} covered = {pct:.2f}%")

if os.environ.get("NEPHELE_UPDATE_BASELINE"):
    with open(baseline_path, "w") as f:
        f.write(f"{pct:.2f}\n")
    print(f"baseline recorded: {pct:.2f}% -> {baseline_path}")
    sys.exit(0)

try:
    with open(baseline_path) as f:
        baseline = float(f.read().strip())
except FileNotFoundError:
    sys.exit(f"missing {baseline_path}; record it with NEPHELE_UPDATE_BASELINE=1")

# Strict gate with a hair of rounding slack.
if pct + 0.05 < baseline:
    sys.exit(f"coverage regression: {pct:.2f}% < baseline {baseline:.2f}%")
print(f"coverage OK: {pct:.2f}% >= baseline {baseline:.2f}%")
PYEOF
