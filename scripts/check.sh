#!/usr/bin/env bash
# Full verification: the test suite under the plain build, under ASan+UBSan,
# under TSan (three separate build trees, so switching sanitizers never
# forces a reconfigure of your main build), a fourth leg running the
# deterministic-simulation suite (ctest label `dst`), a fifth running the
# clone-scheduler suite (ctest label `sched`), a sixth running the
# perf-regression gate, a seventh running the hostile-guest fuzzing
# suite (ctest label `hvfuzz`), an eighth running the post-copy
# lazy-cloning suite (ctest label `lazy`), a ninth running the
# heavy-traffic request layer (ctest label `load`), and a tenth running
# the multi-host cluster-fabric suite (ctest label `cluster`) on the
# plain tree. The cluster suite also runs under both sanitizer legs via
# their build-wide labels.
#
# The sanitizer legs also get a short hostile-guest fuzz round
# (NEPHELE_HVFUZZ_ROUNDS=40): the fuzzer's malformed-argument storms are
# exactly where ASan/UBSan/TSan pay off, but the full default round count
# is too slow under instrumentation.
#
# Usage: scripts/check.sh [ctest-args...]
#   e.g. scripts/check.sh -R parallel_clone       (one suite, all legs)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

run_leg() {
  local name="$1" dir="$2"
  shift 2
  echo "==== [${name}] configure + build ===="
  cmake -B "${dir}" -S . "$@" >/dev/null
  cmake --build "${dir}" -j "${JOBS}" --target all >/dev/null
  echo "==== [${name}] ctest ===="
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" "${CTEST_ARGS[@]}")
}

CTEST_ARGS=("$@")

run_leg plain build
NEPHELE_HVFUZZ_ROUNDS=40 run_leg asan build-asan -DNEPHELE_SANITIZE=ON
NEPHELE_HVFUZZ_ROUNDS=40 run_leg tsan build-tsan -DNEPHELE_TSAN=ON

# Leg 4: the DST suite by label on the already-built plain tree — corpus
# replay, 200 generated scenarios with the oracle after every op, digest
# determinism across worker counts, and the shrink loop.
echo "==== [dst] ctest -L dst ===="
(cd build && ctest --output-on-failure -j "${JOBS}" -L dst "${CTEST_ARGS[@]}")

# Leg 5: the clone-scheduler suite by label on the plain tree — batching
# windows, warm-pool hit/miss/evict, admission control, timeouts, and digest
# stability of sched-op scenarios across worker counts.
echo "==== [sched] ctest -L sched ===="
(cd build && ctest --output-on-failure -j "${JOBS}" -L sched "${CTEST_ARGS[@]}")

# Leg 6: the full perf-regression gate on the plain tree — deterministic
# virtual-time figures under the tight band plus host wall-clock micro-ops
# under the loose band (3 attempts), against scripts/bench_baseline.json.
echo "==== [bench] scripts/bench_gate.sh ===="
scripts/bench_gate.sh --build-dir=build

# Leg 7: the hostile-guest fuzzing suite by label on the plain tree —
# shrunk crash-corpus replay, fresh coverage-guided hostile-op rounds with
# the hypervisor invariant oracle after every op, digest determinism across
# clone-worker counts, and the tape shrinker. NEPHELE_HVFUZZ_ROUNDS=0 turns
# this into corpus-replay-only fast mode.
echo "==== [hvfuzz] ctest -L hvfuzz ===="
(cd build && ctest --output-on-failure -j "${JOBS}" -L hvfuzz "${CTEST_ARGS[@]}")

# Leg 8: the post-copy lazy-cloning suite by label on the plain tree —
# eager-equivalence digests at every worker count, exact stream/demand-fault
# accounting, half-streamed teardown conservation, the oracle negative
# tests, the scheduler's finish-before-park rule and the stream_stall alarm.
echo "==== [lazy] ctest -L lazy ===="
(cd build && ctest --output-on-failure -j "${JOBS}" -L lazy "${CTEST_ARGS[@]}")

# Leg 9: the heavy-traffic request layer by label on the plain tree —
# arrival-process statistical oracles, open-loop generator determinism,
# first-response-wins exact accounting (plain and under dispatch-fault
# injection), d=2 vs d=1 stochastic dominance, the req_tail alarm, and the
# gateway scale-down pinning regression.
echo "==== [load] ctest -L load ===="
(cd build && ctest --output-on-failure -j "${JOBS}" -L load "${CTEST_ARGS[@]}")

# Leg 10: the multi-host cluster fabric by label on the plain tree —
# Host/ClusterFabric facade identity, parent replication, typed cross-host
# migration with link-fault/partition rollback, the three placement
# policies, cross-host warm pools, and merged-export digest determinism
# across reruns and clone-worker counts.
echo "==== [cluster] ctest -L cluster ===="
(cd build && ctest --output-on-failure -j "${JOBS}" -L cluster "${CTEST_ARGS[@]}")

echo "==== all ten legs passed ===="
