#!/usr/bin/env bash
# Perf-regression gate: runs the gate's bench fleet in --json mode and
# compares the documents against scripts/bench_baseline.json with
# build/bench/bench_gate. Exits non-zero on regression or schema drift.
#
# Usage: scripts/bench_gate.sh [--build-dir=DIR] [--sim-only] [--record]
#                              [--selftest]
#
#   --sim-only   compare only kind "sim" metrics (deterministic virtual-time
#                figures; flake-free — what ctest runs). Wall-only benches
#                are skipped entirely.
#   --record     re-record scripts/bench_baseline.json from this machine's
#                run. Do this after an intentional perf or schema change,
#                on an otherwise idle machine.
#   --selftest   prove the gate bites: rerun the wall benches under a 4x
#                NEPHELE_BENCH_HANDICAP and require the comparison to FAIL.
#
# Wall metrics are retried up to 3 times before the gate's verdict stands,
# so a single noisy run on a loaded machine does not fail the build.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
MODE=compare
SIM_ONLY=0
for arg in "$@"; do
  case "${arg}" in
    --build-dir=*) BUILD_DIR="${arg#*=}" ;;
    --sim-only) SIM_ONLY=1 ;;
    --record) MODE=record ;;
    --selftest) MODE=selftest ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

BENCH="${BUILD_DIR}/bench"
BASELINE=scripts/bench_baseline.json
OUT="${BUILD_DIR}/bench-gate"
mkdir -p "${OUT}"

# The deterministic (sim) benches: small instance counts — the figures are
# virtual-time, so size only moves wall-clock.
run_sim_benches() {
  "${BENCH}/bench_fig04_instantiation" 40 1 --json="${OUT}/BENCH_fig04.json" >/dev/null
  "${BENCH}/bench_fig11_faas_scaling" 30 --json="${OUT}/BENCH_fig11.json" >/dev/null
  "${BENCH}/bench_fig12_request_cloning" 2000 --json="${OUT}/BENCH_fig12.json" >/dev/null
  "${BENCH}/bench_fig13_cluster_scaling" 1024 --json="${OUT}/BENCH_fig13.json" >/dev/null
}

# The wall-clock (micro-op) benches.
run_wall_benches() {
  "${BENCH}/bench_micro_ops" --json="${OUT}/BENCH_clone.json" --suite=clone
  "${BENCH}/bench_micro_ops" --json="${OUT}/BENCH_sched.json" --suite=sched
}

CURRENTS_SIM=(--current="${OUT}/BENCH_fig04.json" --current="${OUT}/BENCH_fig11.json"
              --current="${OUT}/BENCH_fig12.json" --current="${OUT}/BENCH_fig13.json")
CURRENTS_WALL=(--current="${OUT}/BENCH_clone.json" --current="${OUT}/BENCH_sched.json")

case "${MODE}" in
  record)
    if [[ -n "${NEPHELE_BENCH_HANDICAP:-}" ]]; then
      echo "refusing to record a baseline under NEPHELE_BENCH_HANDICAP" >&2
      exit 2
    fi
    run_sim_benches
    run_wall_benches
    "${BENCH}/bench_gate" --record="${BASELINE}" \
      "${CURRENTS_SIM[@]}" "${CURRENTS_WALL[@]}"
    ;;
  selftest)
    # A 4x synthetic slowdown on every wall metric must trip the 1.75x band
    # regardless of machine noise. A gate that passes here is not a gate.
    NEPHELE_BENCH_HANDICAP=4.0 run_wall_benches
    if "${BENCH}/bench_gate" --baseline="${BASELINE}" "${CURRENTS_WALL[@]}"; then
      echo "bench gate SELFTEST FAILED: a 4x handicap did not trip the gate" >&2
      exit 1
    fi
    echo "bench gate selftest passed: 4x handicap tripped the gate as required"
    ;;
  compare)
    run_sim_benches
    if [[ "${SIM_ONLY}" == 1 ]]; then
      exec "${BENCH}/bench_gate" --baseline="${BASELINE}" --sim-only "${CURRENTS_SIM[@]}"
    fi
    for attempt in 1 2 3; do
      run_wall_benches
      if "${BENCH}/bench_gate" --baseline="${BASELINE}" --require-all \
           "${CURRENTS_SIM[@]}" "${CURRENTS_WALL[@]}"; then
        exit 0
      fi
      echo "bench gate: attempt ${attempt}/3 failed; retrying wall benches" >&2
    done
    echo "bench gate: regression persisted across 3 attempts" >&2
    exit 1
    ;;
esac
