// Figure 4 — Instantiation times for the Mini-OS UDP server.
//
// Four series over 1000 instances: boot, restore-from-image, clone with the
// Xenstore deep-copy ablation, and clone with xs_clone. Methodology follows
// Sec. 6.1: each instance is "done" when its UDP readiness packet reaches the
// host; the clone series fork a single parent repeatedly; the boot series
// disables xl's name-uniqueness scan (names are generated unique).
//
// Usage: bench_fig04_instantiation [num_instances] [clone_worker_threads]
// (defaults: 1000 instances, 1 staging thread). The thread count only moves
// host wall-clock — every simulated figure is identical at any setting.
// With --json=PATH the run means land in a BenchJsonWriter document for the
// perf-regression gate (scripts/bench_gate.sh).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "bench/bench_args.h"
#include "bench/bench_json.h"
#include "src/apps/udp_ready_app.h"
#include "src/guest/guest_manager.h"
#include "src/net/switch.h"
#include "src/obs/metrics.h"
#include "src/sim/series.h"

namespace nephele {
namespace {

// Staging threads for the clone series (second CLI argument).
unsigned g_clone_worker_threads = 1;

SystemConfig BigPool() {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 3 * kGiB / kPageSize * 4;  // 12 GiB
  cfg.clone_worker_threads = g_clone_worker_threads;
  return cfg;
}

struct ReadyTracker {
  SimTime last_ready;
  int count = 0;
};

void HookReady(NepheleSystem& system, HostSwitch* sw, ReadyTracker* tracker) {
  sw->set_uplink_sink([&system, tracker](const Packet& p) {
    if (p.dst_port == 9999) {
      tracker->last_ready = system.Now();
      ++tracker->count;
    }
  });
}

DomainConfig UdpVmConfig(const std::string& name, std::uint32_t max_clones) {
  DomainConfig cfg;
  cfg.name = name;
  cfg.memory_mb = 4;
  cfg.max_clones = max_clones;
  return cfg;
}

// Boot `n` fresh VMs; returns per-instance ms.
std::vector<double> RunBoot(int n) {
  NepheleSystem system(BigPool());
  GuestManager guests(system);
  ReadyTracker tracker;
  HookReady(system, system.toolstack().default_switch(), &tracker);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    SimTime start = system.Now();
    auto dom = guests.Launch(UdpVmConfig("udp-" + std::to_string(i), 0),
                             std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
    if (!dom.ok()) {
      std::fprintf(stderr, "boot %d failed: %s\n", i, dom.status().ToString().c_str());
      break;
    }
    system.Settle();
    out.push_back((tracker.last_ready - start).ToMillis());
  }
  return out;
}

// Create+save+destroy+restore `n` times, keeping restored instances running.
std::vector<double> RunRestore(int n) {
  NepheleSystem system(BigPool());
  GuestManager guests(system);
  ReadyTracker tracker;
  HookReady(system, system.toolstack().default_switch(), &tracker);
  std::vector<double> out;
  for (int i = 0; i < n; ++i) {
    auto dom = guests.Launch(UdpVmConfig("udp-" + std::to_string(i), 0),
                             std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
    if (!dom.ok()) {
      break;
    }
    system.Settle();
    auto image = system.toolstack().SaveDomain(*dom);
    if (!image.ok()) {
      break;
    }
    (void)guests.Destroy(*dom);
    system.Settle();
    SimTime start = system.Now();
    auto restored = guests.Restore(*image, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
    if (!restored.ok()) {
      break;
    }
    system.Settle();
    out.push_back((tracker.last_ready - start).ToMillis());
  }
  return out;
}

// Per-phase numbers for one clone run, sourced from the system's metrics
// registry (the same data ExportJson() emits) rather than subsystem-private
// counters.
struct CloneRunStats {
  std::uint64_t xenstore_requests = 0;
  std::uint64_t log_rotations = 0;
  double stage1_mean_ms = 0.0;  // CLONEOP first stage, registry histogram
  double stage2_mean_ms = 0.0;  // xencloned second stage, registry histogram
};

double HistMeanMs(const MetricsRegistry& m, std::string_view name) {
  const Histogram* h = m.FindHistogram(name);
  return h == nullptr ? 0.0 : h->mean() / 1e6;
}

// One parent forks itself `n` times. Returns per-clone fork()->ready ms plus
// registry-derived phase stats via the out-param.
std::vector<double> RunClone(int n, bool use_xs_clone, CloneRunStats* stats) {
  NepheleSystem system(BigPool());
  GuestManager guests(system);
  Bond bond;  // stateless switching, identical MAC/IP for the family
  system.toolstack().SetDefaultSwitch(&bond);
  system.xencloned().SetUseXsClone(use_xs_clone);
  ReadyTracker tracker;
  HookReady(system, &bond, &tracker);

  auto parent = guests.Launch(UdpVmConfig("udp-parent", static_cast<std::uint32_t>(n) + 1),
                              std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  if (!parent.ok()) {
    std::fprintf(stderr, "parent boot failed\n");
    return {};
  }
  system.Settle();
  const MetricsRegistry& metrics = system.metrics();
  std::uint64_t requests_before = metrics.CounterValue("xenstore/requests/total");
  std::uint64_t rotations_before = metrics.CounterValue("xenstore/log/rotations");

  std::vector<double> out;
  std::uint16_t next_port = 20000;
  for (int i = 0; i < n; ++i) {
    // Unique <address, port> per clone so bond hashing stays injective
    // (Sec. 6.1 methodology).
    std::uint16_t port = next_port++;
    SimTime start = system.Now();
    Status s = guests.ContextOf(*parent)->Fork(
        1, [port](GuestContext& ctx, GuestApp& self, const ForkResult& r) {
          if (r.is_child) {
            auto& app = static_cast<UdpReadyApp&>(self);
            app.config().src_port = port;
            app.SendReady(ctx);
          }
        });
    if (!s.ok()) {
      std::fprintf(stderr, "fork %d failed: %s\n", i, s.ToString().c_str());
      break;
    }
    system.Settle();
    out.push_back((tracker.last_ready - start).ToMillis());
  }
  stats->xenstore_requests = metrics.CounterValue("xenstore/requests/total") - requests_before;
  stats->log_rotations = metrics.CounterValue("xenstore/log/rotations") - rotations_before;
  stats->stage1_mean_ms = HistMeanMs(metrics, "clone/stage1/duration_ns");
  stats->stage2_mean_ms = HistMeanMs(metrics, "clone/stage2/duration_ns");
  return out;
}

}  // namespace
}  // namespace nephele

int main(int argc, char** argv) {
  using namespace nephele;
  BenchArgs args(argc, argv,
                 {{"num_instances", 1000, "instances per series"},
                  {"clone_worker_threads", 1, "staging threads (wall-clock only)"}});
  int n = static_cast<int>(args.Positional("num_instances"));
  g_clone_worker_threads = static_cast<unsigned>(args.Positional("clone_worker_threads"));

  auto wall_start = std::chrono::steady_clock::now();
  std::vector<double> boot = RunBoot(n);
  std::vector<double> restore = RunRestore(n);
  CloneRunStats deep_stats;
  std::vector<double> deep = RunClone(n, /*use_xs_clone=*/false, &deep_stats);
  CloneRunStats clone_stats;
  std::vector<double> clone = RunClone(n, /*use_xs_clone=*/true, &clone_stats);
  double wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                             wall_start)
                       .count();

  if (!args.json_path().empty()) {
    auto mean_of = [](const std::vector<double>& v) {
      RunningStat s;
      for (double x : v) {
        s.Add(x);
      }
      return s.mean();
    };
    BenchJsonWriter json("fig04");
    json.Add("boot_mean_ms", mean_of(boot), "ms", MetricDir::kLowerIsBetter, MetricKind::kSim);
    json.Add("restore_mean_ms", mean_of(restore), "ms", MetricDir::kLowerIsBetter,
             MetricKind::kSim);
    json.Add("clone_deepcopy_mean_ms", mean_of(deep), "ms", MetricDir::kLowerIsBetter,
             MetricKind::kSim);
    json.Add("clone_mean_ms", mean_of(clone), "ms", MetricDir::kLowerIsBetter, MetricKind::kSim);
    json.Add("clone_vs_boot_speedup", mean_of(boot) / mean_of(clone), "x",
             MetricDir::kHigherIsBetter, MetricKind::kSim);
    json.Add("stage1_mean_ms", clone_stats.stage1_mean_ms, "ms", MetricDir::kLowerIsBetter,
             MetricKind::kSim);
    json.Add("stage2_mean_ms", clone_stats.stage2_mean_ms, "ms", MetricDir::kLowerIsBetter,
             MetricKind::kSim);
    json.Add("host_wall_ms", wall_ms, "ms", MetricDir::kLowerIsBetter, MetricKind::kWall);
    return json.WriteFile(args.json_path()) ? 0 : 1;
  }

  SeriesTable table("Figure 4: instantiation times for Mini-OS UDP server (ms)",
                    {"instance", "boot", "restore", "clone_xs_deep_copy", "clone"});
  std::size_t rows = std::min({boot.size(), restore.size(), deep.size(), clone.size()});
  for (std::size_t i = 0; i < rows; ++i) {
    table.AddRow({static_cast<double>(i + 1), boot[i], restore[i], deep[i], clone[i]});
  }
  table.Print();

  auto avg = [](const std::vector<double>& v, std::size_t from, std::size_t to) {
    RunningStat s;
    for (std::size_t i = from; i < to && i < v.size(); ++i) {
      s.Add(v[i]);
    }
    return s;
  };
  std::size_t tail = rows > 50 ? rows - 50 : 0;
  PrintSummary("boot first-50 mean", avg(boot, 0, 50).mean(), "ms");
  PrintSummary("boot last-50 mean", avg(boot, tail, rows).mean(), "ms");
  PrintSummary("restore first-50 mean", avg(restore, 0, 50).mean(), "ms");
  PrintSummary("restore last-50 mean", avg(restore, tail, rows).mean(), "ms");
  PrintSummary("clone+deepcopy first-50 mean", avg(deep, 0, 50).mean(), "ms");
  PrintSummary("clone+deepcopy last-50 mean", avg(deep, tail, rows).mean(), "ms");
  PrintSummary("clone first-50 mean", avg(clone, 0, 50).mean(), "ms");
  PrintSummary("clone last-50 mean", avg(clone, tail, rows).mean(), "ms");
  PrintSummary("instantiation speedup (boot mean / clone mean)",
               avg(boot, 0, rows).mean() / avg(clone, 0, rows).mean(), "x");
  PrintSummary("xenstore requests per clone (xs_clone)",
               static_cast<double>(clone_stats.xenstore_requests) / static_cast<double>(rows));
  PrintSummary("xenstore requests per clone (deep copy)",
               static_cast<double>(deep_stats.xenstore_requests) / static_cast<double>(rows));
  PrintSummary("log-rotation spikes, clone run (xs_clone)",
               static_cast<double>(clone_stats.log_rotations));
  PrintSummary("log-rotation spikes, clone run (deep copy)",
               static_cast<double>(deep_stats.log_rotations));
  PrintSummary("clone stage-1 mean (xs_clone)", clone_stats.stage1_mean_ms, "ms");
  PrintSummary("clone stage-2 mean (xs_clone)", clone_stats.stage2_mean_ms, "ms");
  PrintSummary("clone stage-1 mean (deep copy)", deep_stats.stage1_mean_ms, "ms");
  PrintSummary("clone stage-2 mean (deep copy)", deep_stats.stage2_mean_ms, "ms");
  return 0;
}
