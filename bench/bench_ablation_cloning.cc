// Ablations of Nephele's design choices (DESIGN.md §4, last row):
//
//  A. xs_clone vs. per-entry deep copy: Xenstore requests and latency per
//     clone (the mechanism behind Fig. 4's clone-series gap).
//  B. xencloned parent-info cache: first vs. subsequent clone userspace cost.
//  C. xl name-uniqueness scan: the LightVM superlinear boot-time pathology.
//  D. Xenstore access-log rotation: spike counts with logging on/off.
//  E. Ring cloning policy: vif rings are copied, console rings are not.
//
// Usage: bench_ablation_cloning [instances]   (default 300)

#include <cstdio>
#include <cstdlib>

#include "bench/bench_args.h"
#include "src/apps/udp_ready_app.h"
#include "src/guest/guest_manager.h"
#include "src/sim/series.h"

namespace nephele {
namespace {

SystemConfig Pool() {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 1024 * 1024;
  return cfg;
}

DomainConfig Vm(const std::string& name, std::uint32_t max_clones) {
  DomainConfig cfg;
  cfg.name = name;
  cfg.memory_mb = 4;
  cfg.max_clones = max_clones;
  return cfg;
}

void AblationXsClone(int n) {
  std::printf("\n# --- Ablation A: xs_clone vs deep copy (%d clones each) ---\n", n);
  for (bool use_xs_clone : {true, false}) {
    NepheleSystem system(Pool());
    GuestManager guests(system);
    system.xencloned().SetUseXsClone(use_xs_clone);
    auto dom = guests.Launch(Vm("p", static_cast<std::uint32_t>(n) + 1),
                             std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
    system.Settle();
    std::uint64_t req0 = system.xenstore().stats().requests;
    SimTime t0 = system.Now();
    for (int i = 0; i < n; ++i) {
      (void)guests.ContextOf(*dom)->Fork(1, nullptr);
      system.Settle();
    }
    double ms = (system.Now() - t0).ToMillis() / n;
    double reqs = static_cast<double>(system.xenstore().stats().requests - req0) / n;
    std::printf("# %-11s: %6.2f ms/clone, %5.1f xenstore requests/clone\n",
                use_xs_clone ? "xs_clone" : "deep_copy", ms, reqs);
  }
}

void AblationCache() {
  std::printf("\n# --- Ablation B: xencloned parent-info cache ---\n");
  NepheleSystem system(Pool());
  GuestManager guests(system);
  auto dom = guests.Launch(Vm("p", 8), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system.Settle();
  for (int i = 0; i < 3; ++i) {
    (void)guests.ContextOf(*dom)->Fork(1, nullptr);
    system.Settle();
    std::printf("# clone %d userspace ops: %.3f ms (%s)\n", i + 1,
                system.xencloned().stats().last_second_stage.ToMillis(),
                i == 0 ? "cache miss" : "cache hit");
  }
}

void AblationNameCheck(int n) {
  std::printf("\n# --- Ablation C: xl name-uniqueness scan (boot time, ms) ---\n");
  std::printf("#\tinstances\tno_check\twith_check\n");
  for (bool check : {false, true}) {
    (void)check;
  }
  NepheleSystem no_check(Pool());
  GuestManager g1(no_check);
  NepheleSystem with_check(Pool());
  GuestManager g2(with_check);
  with_check.toolstack().SetNameCheckEnabled(true);
  for (int i = 0; i < n; ++i) {
    SimTime a0 = no_check.Now();
    (void)g1.Launch(Vm("vm-" + std::to_string(i), 0),
                    std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
    no_check.Settle();
    double a = (no_check.Now() - a0).ToMillis();
    SimTime b0 = with_check.Now();
    (void)g2.Launch(Vm("vm-" + std::to_string(i), 0),
                    std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
    with_check.Settle();
    double b = (with_check.Now() - b0).ToMillis();
    if ((i + 1) % (n / 6 > 0 ? n / 6 : 1) == 0) {
      std::printf("#\t%d\t%.2f\t%.2f\n", i + 1, a, b);
    }
  }
}

void AblationAccessLog(int n) {
  std::printf("\n# --- Ablation D: Xenstore access-log rotation spikes ---\n");
  for (bool logging : {true, false}) {
    NepheleSystem system(Pool());
    GuestManager guests(system);
    system.xenstore().SetAccessLogEnabled(logging);
    for (int i = 0; i < n; ++i) {
      (void)guests.Launch(Vm("vm-" + std::to_string(i), 0),
                          std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
      system.Settle();
    }
    std::printf("# access log %-3s: %llu rotations over %d boots\n", logging ? "on" : "off",
                static_cast<unsigned long long>(system.xenstore().stats().log_rotations), n);
  }
}

void AblationRingPolicy() {
  std::printf("\n# --- Ablation E: ring cloning policy ---\n");
  NepheleSystem system(Pool());
  GuestManager guests(system);
  auto dom = guests.Launch(Vm("p", 4), std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system.Settle();
  // Pending console output and RX traffic at clone time.
  (void)system.devices().console().GuestWrite(*dom, "pre-clone console output");
  (void)guests.ContextOf(*dom)->Fork(1, nullptr);
  system.Settle();
  DomId child = system.hypervisor().FindDomain(*dom)->children.front();
  std::printf("# console output copied to clone: %s (policy: never — debugging)\n",
              system.devices().console().Output(child)->empty() ? "no" : "yes");
  GuestDevices* pd = system.toolstack().FindDevices(*dom);
  GuestDevices* cd = system.toolstack().FindDevices(child);
  std::printf("# vif ring capacities parent/child: %zu/%zu (policy: copy both rings)\n",
              pd->net->rx_ring().capacity(), cd->net->rx_ring().capacity());
}

}  // namespace
}  // namespace nephele

int main(int argc, char** argv) {
  using namespace nephele;
  BenchArgs args(argc, argv, {{"instances", 300, "instances per ablation"}});
  int n = static_cast<int>(args.Positional("instances"));
  std::printf("# Cloning design ablations (see DESIGN.md)\n");
  AblationXsClone(n);
  AblationCache();
  AblationNameCheck(n);
  AblationAccessLog(n > 150 ? 150 : n);
  AblationRingPolicy();
  return 0;
}
