// The perf-regression gate's comparison logic, header-only so tests can
// exercise it without spawning the binary (bench_gate_main.cc is a thin
// CLI over these functions).
//
// Inputs are parsed BenchJsonWriter documents (bench_json.h schema) plus a
// baseline document of the shape
//
//   {"benches": {"<bench>": <BenchJsonWriter doc>, ...}, "schema_version": 1}
//
// checked in as scripts/bench_baseline.json. The gate fails a run when
//
//   * a metric regressed past its tolerance band — kind "sim" metrics are
//     deterministic figures and get the tight band (default 1.10x); kind
//     "wall" metrics are host wall-clock and get the loose band (1.75x).
//     Direction-aware: "lower" fails above baseline * tol, "higher" fails
//     below baseline / tol.
//   * the schema drifted in EITHER direction — a metric present in the
//     baseline but missing from the current run (something stopped being
//     measured), or present in the run but missing from the baseline
//     (re-record before relying on it). Renames fail as one of each.
//   * a bench named in the baseline produced no current document (only
//     with require_all, the full-gate mode; --sim-only runs skip the
//     wall-only benches entirely).
//
// Improvements never fail the gate; they are reported as notes so a stale
// (too easy) baseline is visible in the log.

#ifndef BENCH_BENCH_GATE_H_
#define BENCH_BENCH_GATE_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/json.h"

namespace nephele {

struct GateOptions {
  double sim_tolerance = 1.10;
  double wall_tolerance = 1.75;
  // Skip kind "wall" metrics (deterministic gate for ctest).
  bool sim_only = false;
  // Fail when a baseline bench has no current document (full-gate mode).
  bool require_all = false;
};

struct GateReport {
  std::vector<std::string> failures;
  std::vector<std::string> notes;  // improvements, skips
  std::size_t metrics_checked = 0;
  bool ok() const { return failures.empty(); }

  void Print(std::FILE* out) const {
    for (const std::string& n : notes) {
      std::fprintf(out, "note: %s\n", n.c_str());
    }
    for (const std::string& f : failures) {
      std::fprintf(out, "FAIL: %s\n", f.c_str());
    }
    std::fprintf(out, "bench gate: %zu metric(s) checked, %zu failure(s)\n", metrics_checked,
                 failures.size());
  }
};

namespace gate_internal {

inline const JsonValue* MetricField(const JsonValue& metric, const char* key,
                                    const std::string& where, GateReport* report) {
  const JsonValue* v = metric.Find(key);
  if (v == nullptr) {
    report->failures.push_back(where + ": malformed metric (missing \"" + key + "\")");
  }
  return v;
}

// One metric of one bench, already known to exist on both sides.
inline void CompareMetric(const std::string& where, const JsonValue& base,
                          const JsonValue& current, const GateOptions& opt,
                          GateReport* report) {
  const JsonValue* b_kind = MetricField(base, "kind", where, report);
  const JsonValue* c_kind = MetricField(current, "kind", where, report);
  const JsonValue* b_dir = MetricField(base, "direction", where, report);
  const JsonValue* c_dir = MetricField(current, "direction", where, report);
  const JsonValue* b_val = MetricField(base, "value_micros", where, report);
  const JsonValue* c_val = MetricField(current, "value_micros", where, report);
  if (b_kind == nullptr || c_kind == nullptr || b_dir == nullptr || c_dir == nullptr ||
      b_val == nullptr || c_val == nullptr) {
    return;
  }
  if (b_kind->string_value != c_kind->string_value ||
      b_dir->string_value != c_dir->string_value) {
    report->failures.push_back(where + ": kind/direction changed (" + b_kind->string_value +
                               "/" + b_dir->string_value + " -> " + c_kind->string_value + "/" +
                               c_dir->string_value + "); re-record the baseline");
    return;
  }
  const bool wall = b_kind->string_value == "wall";
  if (wall && opt.sim_only) {
    report->notes.push_back(where + ": wall metric skipped (--sim-only)");
    return;
  }
  const double tol = wall ? opt.wall_tolerance : opt.sim_tolerance;
  const double base_v = b_val->number;
  const double cur_v = c_val->number;
  ++report->metrics_checked;
  char buf[256];
  if (b_dir->string_value == "lower") {
    if (cur_v > base_v * tol) {
      std::snprintf(buf, sizeof buf, "%s: regressed %.0f -> %.0f micros (limit %.0f, %.2fx band)",
                    where.c_str(), base_v, cur_v, base_v * tol, tol);
      report->failures.push_back(buf);
    } else if (base_v > 0 && cur_v * tol < base_v) {
      std::snprintf(buf, sizeof buf, "%s: improved %.0f -> %.0f micros; consider re-recording",
                    where.c_str(), base_v, cur_v);
      report->notes.push_back(buf);
    }
  } else {
    if (cur_v * tol < base_v) {
      std::snprintf(buf, sizeof buf, "%s: regressed %.0f -> %.0f micros (limit %.0f, %.2fx band)",
                    where.c_str(), base_v, cur_v, base_v / tol, tol);
      report->failures.push_back(buf);
    } else if (cur_v > base_v * tol) {
      std::snprintf(buf, sizeof buf, "%s: improved %.0f -> %.0f micros; consider re-recording",
                    where.c_str(), base_v, cur_v);
      report->notes.push_back(buf);
    }
  }
}

}  // namespace gate_internal

// Compares every current document against its baseline section.
inline GateReport GateCompare(const JsonValue& baseline, const std::vector<JsonValue>& currents,
                              const GateOptions& opt = {}) {
  GateReport report;
  const JsonValue* benches = baseline.Find("benches");
  if (benches == nullptr || !benches->is_object()) {
    report.failures.push_back("baseline: missing \"benches\" object");
    return report;
  }
  std::set<std::string> covered;
  for (const JsonValue& current : currents) {
    const JsonValue* name_v = current.Find("bench");
    if (name_v == nullptr || !name_v->is_string()) {
      report.failures.push_back("current document: missing \"bench\" name");
      continue;
    }
    const std::string& name = name_v->string_value;
    covered.insert(name);
    const JsonValue* base_doc = benches->Find(name);
    if (base_doc == nullptr) {
      report.failures.push_back("bench " + name +
                                ": not in the baseline; re-record (bench_gate --record)");
      continue;
    }
    const JsonValue* base_metrics = base_doc->Find("metrics");
    const JsonValue* cur_metrics = current.Find("metrics");
    if (base_metrics == nullptr || cur_metrics == nullptr || !base_metrics->is_object() ||
        !cur_metrics->is_object()) {
      report.failures.push_back("bench " + name + ": missing \"metrics\" object");
      continue;
    }
    // Schema drift, both directions.
    for (const auto& [metric, value] : base_metrics->members) {
      (void)value;
      if (cur_metrics->Find(metric) == nullptr) {
        report.failures.push_back("bench " + name + ": metric " + metric +
                                  " vanished from the current run (schema drift)");
      }
    }
    for (const auto& [metric, value] : cur_metrics->members) {
      (void)value;
      if (base_metrics->Find(metric) == nullptr) {
        report.failures.push_back("bench " + name + ": metric " + metric +
                                  " is not in the baseline (schema drift; re-record)");
      }
    }
    for (const auto& [metric, cur_m] : cur_metrics->members) {
      const JsonValue* base_m = base_metrics->Find(metric);
      if (base_m != nullptr) {
        gate_internal::CompareMetric(name + "/" + metric, *base_m, cur_m, opt, &report);
      }
    }
  }
  if (opt.require_all) {
    for (const auto& [name, doc] : benches->members) {
      (void)doc;
      if (covered.count(name) == 0) {
        report.failures.push_back("bench " + name +
                                  ": in the baseline but produced no current document");
      }
    }
  }
  return report;
}

// Deterministic serializer for re-recording: document order preserved (the
// writer already sorts), integers emitted without a fraction.
inline std::string SerializeJson(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      return "null";
    case JsonValue::Kind::kBool:
      return v.bool_value ? "true" : "false";
    case JsonValue::Kind::kNumber: {
      const auto i = static_cast<std::int64_t>(v.number);
      if (static_cast<double>(i) == v.number) {
        return std::to_string(i);
      }
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", v.number);
      return buf;
    }
    case JsonValue::Kind::kString: {
      std::string out = "\"";
      for (char c : v.string_value) {
        if (c == '"' || c == '\\') {
          out += '\\';
        }
        out += c;
      }
      return out + "\"";
    }
    case JsonValue::Kind::kObject: {
      std::string out = "{";
      for (std::size_t i = 0; i < v.members.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += "\"" + v.members[i].first + "\":" + SerializeJson(v.members[i].second);
      }
      return out + "}";
    }
    case JsonValue::Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < v.elements.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += SerializeJson(v.elements[i]);
      }
      return out + "]";
    }
  }
  return "null";  // unreachable; -Werror=switch keeps the cases exhaustive
}

// Builds the new baseline document from the current runs: benches sorted by
// name, each document embedded verbatim (minus its handicap echo — a
// baseline recorded under a handicap would be a lie, so recording under
// one is rejected by the caller).
inline std::string RecordBaseline(const std::vector<JsonValue>& currents) {
  std::vector<std::pair<std::string, const JsonValue*>> sorted;
  sorted.reserve(currents.size());
  for (const JsonValue& current : currents) {
    const JsonValue* name = current.Find("bench");
    if (name != nullptr && name->is_string()) {
      sorted.emplace_back(name->string_value, &current);
    }
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out = "{\"benches\":{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += "\"" + sorted[i].first + "\":" + SerializeJson(*sorted[i].second);
  }
  out += "},\"schema_version\":1}\n";
  return out;
}

}  // namespace nephele

#endif  // BENCH_BENCH_GATE_H_
