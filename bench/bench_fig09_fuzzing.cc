// Figure 9 — Fuzzing throughput over time (Sec. 7.2).
//
// Seven series, each a 300 s campaign sampled every 10 s:
//   * Unikraft (KFX+AFL), no cloning: a fresh VM per input   (~2 exec/s)
//   * Unikraft (KFX+AFL) with Nephele cloning                (~470 exec/s)
//   * the two corresponding getppid baselines
//   * native Linux process under plain AFL                   (~590 exec/s)
//   * its getppid baseline
//   * Linux VM kernel module under KFX (legacy VM forks)     (~320 exec/s)
//
// Usage: bench_fig09_fuzzing [seconds]   (default 300)

#include <cstdio>
#include <cstdlib>

#include "bench/bench_args.h"
#include "src/fuzz/fuzz_session.h"
#include "src/sim/series.h"

namespace nephele {
namespace {

FuzzSessionResult RunOne(FuzzMode mode, bool baseline, int seconds) {
  SystemConfig scfg;
  scfg.hypervisor.pool_frames = 64 * 1024;
  NepheleSystem system(scfg);
  GuestManager guests(system);
  FuzzSessionConfig cfg;
  cfg.mode = mode;
  cfg.getppid_baseline = baseline;
  cfg.duration = SimDuration::Seconds(seconds);
  cfg.sample_every = SimDuration::Seconds(10);
  return RunFuzzSession(guests, cfg);
}

}  // namespace
}  // namespace nephele

int main(int argc, char** argv) {
  using namespace nephele;
  BenchArgs args(argc, argv, {{"seconds", 300, "simulated seconds per session"}});
  int seconds = static_cast<int>(args.Positional("seconds"));

  struct Series {
    const char* name;
    FuzzMode mode;
    bool baseline;
    FuzzSessionResult result;
  };
  Series runs[] = {
      {"unikraft_baseline", FuzzMode::kUnikraftNoClone, true, {}},
      {"unikraft", FuzzMode::kUnikraftNoClone, false, {}},
      {"unikraft_cloning_baseline", FuzzMode::kUnikraftClone, true, {}},
      {"unikraft_cloning", FuzzMode::kUnikraftClone, false, {}},
      {"linux_process_baseline", FuzzMode::kLinuxProcess, true, {}},
      {"linux_process", FuzzMode::kLinuxProcess, false, {}},
      {"linux_kernel_module_baseline", FuzzMode::kLinuxKernelModule, true, {}},
  };
  for (auto& run : runs) {
    run.result = RunOne(run.mode, run.baseline, seconds);
  }

  std::vector<std::string> columns{"seconds"};
  for (const auto& run : runs) {
    columns.push_back(run.name);
  }
  SeriesTable table("Figure 9: fuzzing throughput over time (executions/s)", columns);
  std::size_t rows = runs[0].result.series.size();
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<double> row{runs[0].result.series[i].t_seconds};
    for (const auto& run : runs) {
      row.push_back(i < run.result.series.size() ? run.result.series[i].execs_per_second : 0);
    }
    table.AddRow(row);
  }
  table.Print();

  for (const auto& run : runs) {
    PrintSummary(std::string(run.name) + " average", run.result.average_execs_per_second,
                 "exec/s");
  }
  double with_cloning = runs[3].result.average_execs_per_second;
  double native = runs[5].result.average_execs_per_second;
  double module = runs[6].result.average_execs_per_second;
  PrintSummary("cloning vs native Linux process gap", (native - with_cloning) / native * 100.0,
               "%");
  PrintSummary("kernel-module KFX vs cloning gap", (with_cloning - module) / with_cloning * 100.0,
               "%");
  PrintSummary("edges covered (unikraft_cloning)",
               static_cast<double>(runs[3].result.edges_covered));
  PrintSummary("crashes found (unikraft_cloning)",
               static_cast<double>(runs[3].result.crashes));
  return 0;
}
