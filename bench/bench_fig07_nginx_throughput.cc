// Figure 7 — NGINX HTTP request throughput vs. number of workers.
//
// Two deployments (Sec. 7.1):
//  * Linux processes sharing one listen socket via SO_REUSEPORT; the kernel
//    load-balances connections across workers (baseline model).
//  * Unikraft clones: the master fork()s workers, each worker is a VM pinned
//    to its own core, and a Dom0 bond load-balances the MAC/IP-identical
//    vifs — the full Nephele datapath.
// A wrk-like closed-loop generator keeps 400 connections per worker open.
//
// Usage: bench_fig07_nginx_throughput [repetitions] [seconds]
//        (defaults 5 reps x 2 s; the paper used 30 x 5 s)

#include <cstdio>
#include <cstdlib>

#include "bench/bench_args.h"
#include "src/apps/nginx_app.h"
#include "src/baseline/linux_process.h"
#include "src/guest/guest_manager.h"
#include "src/sim/series.h"

namespace nephele {
namespace {

constexpr int kConnectionsPerWorker = 400;

// Closed-loop load against the unikernel deployment, via the bond.
double MeasureClones(unsigned workers, int seconds, std::uint64_t seed) {
  SystemConfig scfg;
  scfg.hypervisor.pool_frames = 64 * 1024;
  NepheleSystem system(scfg);
  GuestManager guests(system);
  Bond bond;
  system.toolstack().SetDefaultSwitch(&bond);

  DomainConfig cfg;
  cfg.name = "nginx";
  cfg.memory_mb = 16;
  cfg.max_clones = workers;
  NginxConfig ncfg;
  ncfg.workers = workers;
  // Pinned clones still see a little per-run variation (timer/IRQ luck),
  // far below the unpinned processes'.
  Rng run_rng(seed * 77);
  ncfg.service_time = ncfg.service_time * std::max(0.97, run_rng.NextGaussian(1.0, 0.006));
  auto dom = guests.Launch(cfg, std::make_unique<NginxApp>(ncfg));
  if (!dom.ok()) {
    return 0;
  }
  system.Settle();

  GuestDevices* gd = system.toolstack().FindDevices(*dom);
  Ipv4Addr server_ip = gd->net->ip();
  Ipv4Addr client_ip = MakeIpv4(10, 8, 255, 1);

  std::uint64_t completions = 0;
  SimTime start = system.Now();
  SimTime deadline = start + SimDuration::Seconds(seconds);

  // Each "connection" is a distinct 5-tuple in a closed request loop.
  auto send_request = [&](std::uint16_t src_port) {
    Packet req;
    req.proto = IpProto::kTcp;
    req.src_ip = client_ip;
    req.src_port = src_port;
    req.dst_ip = server_ip;
    req.dst_port = 80;
    static const char kGet[] = "GET /";
    req.payload.assign(kGet, kGet + sizeof(kGet) - 1);
    bond.InjectFromUplink(req);
  };
  bond.set_uplink_sink([&](const Packet& reply) {
    if (reply.src_port != 80) {
      return;
    }
    ++completions;
    if (system.Now() < deadline) {
      send_request(reply.dst_port);  // next request on the same connection
    }
  });

  Rng rng(seed);
  int conns = kConnectionsPerWorker * static_cast<int>(workers);
  for (int c = 0; c < conns; ++c) {
    // Tiny start offsets decorrelate the initial burst.
    std::uint16_t port = static_cast<std::uint16_t>(10000 + c);
    system.loop().Post(SimDuration::Micros(static_cast<double>(rng.NextBelow(500))),
                       [&send_request, port] { send_request(port); });
  }
  system.loop().RunUntil(deadline);
  return static_cast<double>(completions) / static_cast<double>(seconds);
}

// Closed-loop load against the SO_REUSEPORT process group model.
double MeasureProcesses(unsigned workers, int seconds, std::uint64_t seed) {
  ReuseportServerGroup group(ReuseportServerGroup::Config{.workers = workers}, seed);
  EventLoop loop;
  SimTime deadline(SimDuration::Seconds(seconds).ns());
  std::uint64_t completions = 0;

  std::function<void(std::uint16_t)> issue = [&](std::uint16_t src_port) {
    Packet req;
    req.proto = IpProto::kTcp;
    req.src_ip = MakeIpv4(10, 8, 255, 1);
    req.src_port = src_port;
    req.dst_ip = MakeIpv4(10, 8, 0, 2);
    req.dst_port = 80;
    SimTime done = group.Submit(req, loop.Now());
    loop.PostAt(done, [&, src_port] {
      ++completions;
      if (loop.Now() < deadline) {
        issue(src_port);
      }
    });
  };
  int conns = kConnectionsPerWorker * static_cast<int>(workers);
  for (int c = 0; c < conns; ++c) {
    issue(static_cast<std::uint16_t>(10000 + c));
  }
  loop.RunUntil(deadline);
  return static_cast<double>(completions) / static_cast<double>(seconds);
}

}  // namespace
}  // namespace nephele

int main(int argc, char** argv) {
  using namespace nephele;
  BenchArgs args(argc, argv, {{"reps", 5, "repetitions per worker count"},
                              {"seconds", 2, "simulated seconds per run"}});
  int reps = static_cast<int>(args.Positional("reps"));
  int seconds = static_cast<int>(args.Positional("seconds"));

  SeriesTable table("Figure 7: NGINX HTTP throughput vs #workers (requests/s)",
                    {"workers", "processes_mean", "processes_stddev", "clones_mean",
                     "clones_stddev"});
  double proc1 = 0, clone1 = 0, proc4 = 0, clone4 = 0;
  for (unsigned workers = 1; workers <= 4; ++workers) {
    RunningStat procs, clones;
    for (int r = 0; r < reps; ++r) {
      procs.Add(MeasureProcesses(workers, seconds, 1000 + static_cast<std::uint64_t>(r)));
      clones.Add(MeasureClones(workers, seconds, 2000 + static_cast<std::uint64_t>(r)));
    }
    table.AddRow({static_cast<double>(workers), procs.mean(), procs.stddev(), clones.mean(),
                  clones.stddev()});
    if (workers == 1) {
      proc1 = procs.mean();
      clone1 = clones.mean();
    }
    if (workers == 4) {
      proc4 = procs.mean();
      clone4 = clones.mean();
    }
  }
  table.Print();
  PrintSummary("process scaling 1->4 workers", proc4 / proc1, "x");
  PrintSummary("clone scaling 1->4 workers", clone4 / clone1, "x");
  PrintSummary("clones vs processes at 4 workers", clone4 / proc4, "x");
  return 0;
}
