// Figure 11 — Reaction of containers vs. unikernels to increasing demand.
//
// Sec. 7.3: an ab-style generator (8 workers, effectively saturating the
// deployment at ~1450 req/s) hits the function while the autoscaler adds
// instances. Containers serve 600 req/s each but become ready late;
// unikernel clones serve 300 req/s each but track the load closely.
//
// Beyond the paper's figure, a third run puts the unikernel backend behind
// the clone scheduler and drives a demand trough (saturation -> near-idle ->
// saturation): the trough scales instances down into the warm pool, and the
// recovery is served from parked children in O(reset) — plus a deterministic
// burst-rejection demo of the scheduler's admission control.
//
// Usage: bench_fig11_faas_scaling [seconds]   (default 150). With
// --json=PATH the scheduler-run figures land in a BenchJsonWriter document
// for the perf-regression gate.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_args.h"
#include "bench/bench_json.h"
#include "src/faas/gateway.h"
#include "src/sched/scheduler.h"
#include "src/sim/series.h"

namespace nephele {
namespace {

constexpr double kSaturationRps = 1450.0;  // ab with 8 workers, Sec. 7.3

}  // namespace
}  // namespace nephele

int main(int argc, char** argv) {
  using namespace nephele;
  BenchArgs args(argc, argv, {{"seconds", 150, "simulated seconds per run"}});
  int seconds = static_cast<int>(args.Positional("seconds"));
  auto wall_start = std::chrono::steady_clock::now();
  auto demand = [](double) { return kSaturationRps; };

  EventLoop closs;
  ContainerBackend containers(closs, ContainerBackend::Config{});
  OpenFaasGateway cgw(closs, containers, GatewayConfig{});
  GatewayRunResult cres = cgw.Run(SimDuration::Seconds(seconds), demand);

  SystemConfig scfg;
  scfg.hypervisor.pool_frames = 1024 * 1024;
  NepheleSystem system(scfg);
  GuestManager guests(system);
  (void)system.devices().hostfs().CreateFile("/srv/guest-root/python3");
  UnikernelBackend unikernels(guests, UnikernelBackend::Config{});
  OpenFaasGateway ugw(system.loop(), unikernels, GatewayConfig{});
  GatewayRunResult ures = ugw.Run(SimDuration::Seconds(seconds), demand);

  SeriesTable table("Figure 11: throughput at increasing function-call demand (req/s)",
                    {"seconds", "containers", "unikernels"});
  std::size_t rows = std::min(cres.series.size(), ures.series.size());
  for (std::size_t i = 0; i < rows; i += 2) {
    table.AddRow({cres.series[i].t_seconds, cres.series[i].served_rps,
                  ures.series[i].served_rps});
  }
  table.Print();

  auto print_readiness = [](const char* name, const std::vector<double>& times) {
    std::printf("# %s instance-ready times (s):", name);
    for (std::size_t i = 0; i < times.size() && i < 6; ++i) {
      std::printf(" %.0f", times[i]);
    }
    std::printf("\n");
  };
  print_readiness("containers", cres.readiness_times);
  print_readiness("unikernels", ures.readiness_times);

  PrintSummary("requests served in first 60 s, containers",
               [&] {
                 double sum = 0;
                 for (std::size_t i = 0; i < 60 && i < cres.series.size(); ++i) {
                   sum += cres.series[i].served_rps;
                 }
                 return sum;
               }());
  PrintSummary("requests served in first 60 s, unikernels",
               [&] {
                 double sum = 0;
                 for (std::size_t i = 0; i < 60 && i < ures.series.size(); ++i) {
                   sum += ures.series[i].served_rps;
                 }
                 return sum;
               }());
  PrintSummary("final throughput, containers", cres.series[rows - 1].served_rps, "req/s");
  PrintSummary("final throughput, unikernels", ures.series[rows - 1].served_rps, "req/s");

  // --- Scheduled run: warm pool across a demand trough -------------------
  //
  // Saturation for the first third, near-idle for the second, saturation
  // again for the last. The scale-down threshold retires instances into the
  // scheduler's warm pool during the trough; the recovery's scale-ups are
  // served warm (CloneReset + re-report) instead of cloning afresh.
  SystemConfig wcfg;
  wcfg.hypervisor.pool_frames = 1024 * 1024;
  wcfg.sched.warm_pool_capacity = 8;
  NepheleSystem wsys(wcfg);
  GuestManager wguests(wsys);
  (void)wsys.devices().hostfs().CreateFile("/srv/guest-root/python3");
  UnikernelBackend wuni(wguests, UnikernelBackend::Config{});
  CloneScheduler wsched(wsys);
  wuni.AttachScheduler(&wsched);
  GatewayConfig wgcfg;
  wgcfg.scale_down_threshold_per_instance = 3.0;
  OpenFaasGateway wgw(wsys.loop(), wuni, wgcfg);
  const double third = seconds / 3.0;
  auto trough = [third](double t) {
    return (t >= third && t < 2 * third) ? 2.0 : kSaturationRps;
  };
  GatewayRunResult wres = wgw.Run(SimDuration::Seconds(seconds), trough);

  SeriesTable wtable(
      "Figure 11b: scheduled unikernels across a demand trough (req/s)",
      {"seconds", "demand", "served", "ready"});
  for (std::size_t i = 0; i < wres.series.size(); i += 2) {
    wtable.AddRow({wres.series[i].t_seconds, wres.series[i].demand_rps,
                   wres.series[i].served_rps,
                   static_cast<double>(wres.series[i].instances_ready)});
  }
  wtable.Print();

  const MetricsRegistry& wm = wsys.metrics();
  PrintSummary("sched warm-pool hits", static_cast<double>(wm.CounterValue("sched/warm_hits")));
  PrintSummary("sched cold misses", static_cast<double>(wm.CounterValue("sched/warm_misses")));
  PrintSummary("sched instances parked", static_cast<double>(wm.CounterValue("sched/parked_total")));
  const Histogram* warm_ns = wm.FindHistogram("sched/warm_grant_ns");
  const Histogram* cold_ns = wm.FindHistogram("sched/wait_ns");
  if (warm_ns != nullptr && cold_ns != nullptr) {
    PrintSummary("warm grant latency, mean", warm_ns->mean() / 1e6, "ms");
    PrintSummary("cold grant latency, mean", cold_ns->mean() / 1e6, "ms");
  }

  // --- Admission-control demo: a deterministic burst rejection -----------
  //
  // A burst of max_queue_depth + 4 single-child acquires against one parent:
  // exactly 4 are rejected with kResourceExhausted, every accepted one is
  // eventually granted. Same numbers on every run.
  SystemConfig bcfg;
  bcfg.hypervisor.pool_frames = 256 * 1024;
  bcfg.sched.max_queue_depth = 8;
  NepheleSystem bsys(bcfg);
  CloneScheduler bsched(bsys);
  DomainConfig bdom;
  bdom.name = "burst-parent";
  bdom.memory_mb = 4;
  bdom.max_clones = 64;
  bdom.with_vif = true;
  auto bparent = bsys.toolstack().CreateDomain(bdom);
  std::size_t rejected = 0, granted = 0;
  if (bparent.ok()) {
    const std::size_t burst = bcfg.sched.max_queue_depth + 4;
    for (std::size_t i = 0; i < burst; ++i) {
      Status s = bsched.Acquire({kDom0, *bparent, kInvalidMfn, 1},
                                [&granted](Result<DomId> r) { granted += r.ok() ? 1 : 0; });
      if (s.code() == StatusCode::kResourceExhausted) {
        ++rejected;
      }
    }
    bsys.Settle();
  }
  PrintSummary("burst acquires rejected (queue depth 8, burst 12)",
               static_cast<double>(rejected));
  PrintSummary("burst acquires granted", static_cast<double>(granted));

  // --- Time-to-first-response: eager vs post-copy (lazy) stage 1 ---------
  //
  // A 64-child batch off a large (64 MiB) parent, one dedicated system per
  // mode. TTFR is the virtual time from CLONEOP issue to every child being
  // granted (runnable). Eager stage 1 shares the parent's whole p2m into
  // each child before granting; post-copy maps only the hot working set
  // (max_hot_pages) and streams the rest in the background, so its TTFR
  // must sit strictly below the full-copy one.
  auto ttfr_ms = [](bool lazy) {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = 1024 * 1024;
    NepheleSystem sys(cfg);
    DomainConfig dcfg;
    dcfg.name = "ttfr-parent";
    dcfg.memory_mb = 64;
    dcfg.max_clones = 128;
    dcfg.with_vif = true;
    auto parent = sys.toolstack().CreateDomain(dcfg);
    if (!parent.ok()) {
      return -1.0;
    }
    sys.Settle();
    const Domain* d = sys.hypervisor().FindDomain(*parent);
    const std::int64_t t0 = sys.Now().ns();
    auto kids =
        sys.clone_engine().Clone({*parent, *parent, d->p2m[d->start_info_gfn].mfn, 64, lazy});
    const double ms = static_cast<double>(sys.Now().ns() - t0) / 1e6;
    if (!kids.ok()) {
      return -1.0;
    }
    sys.Settle();  // drain stage 2 and the background streams
    return ms;
  };
  const double ttfr_eager = ttfr_ms(/*lazy=*/false);
  const double ttfr_lazy = ttfr_ms(/*lazy=*/true);
  PrintSummary("TTFR, 64-child batch, eager full-copy", ttfr_eager, "ms");
  PrintSummary("TTFR, 64-child batch, lazy post-copy", ttfr_lazy, "ms");

  if (!args.json_path().empty()) {
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
    BenchJsonWriter json("fig11");
    json.Add("warm_hits", static_cast<double>(wm.CounterValue("sched/warm_hits")), "count",
             MetricDir::kHigherIsBetter, MetricKind::kSim);
    json.Add("warm_misses", static_cast<double>(wm.CounterValue("sched/warm_misses")), "count",
             MetricDir::kLowerIsBetter, MetricKind::kSim);
    json.Add("parked_total", static_cast<double>(wm.CounterValue("sched/parked_total")), "count",
             MetricDir::kHigherIsBetter, MetricKind::kSim);
    if (warm_ns != nullptr && cold_ns != nullptr) {
      json.Add("warm_grant_mean_ms", warm_ns->mean() / 1e6, "ms", MetricDir::kLowerIsBetter,
               MetricKind::kSim);
      json.Add("cold_grant_mean_ms", cold_ns->mean() / 1e6, "ms", MetricDir::kLowerIsBetter,
               MetricKind::kSim);
    }
    json.Add("burst_rejected", static_cast<double>(rejected), "count",
             MetricDir::kLowerIsBetter, MetricKind::kSim);
    json.Add("burst_granted", static_cast<double>(granted), "count",
             MetricDir::kHigherIsBetter, MetricKind::kSim);
    json.Add("ttfr_eager_ms", ttfr_eager, "ms", MetricDir::kLowerIsBetter, MetricKind::kSim);
    json.Add("ttfr_lazy_ms", ttfr_lazy, "ms", MetricDir::kLowerIsBetter, MetricKind::kSim);
    json.Add("host_wall_ms", wall_ms, "ms", MetricDir::kLowerIsBetter, MetricKind::kWall);
    return json.WriteFile(args.json_path()) ? 0 : 1;
  }
  return 0;
}
