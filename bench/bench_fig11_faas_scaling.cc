// Figure 11 — Reaction of containers vs. unikernels to increasing demand.
//
// Sec. 7.3: an ab-style generator (8 workers, effectively saturating the
// deployment at ~1450 req/s) hits the function while the autoscaler adds
// instances. Containers serve 600 req/s each but become ready late;
// unikernel clones serve 300 req/s each but track the load closely.
//
// Usage: bench_fig11_faas_scaling [seconds]   (default 150)

#include <cstdio>
#include <cstdlib>

#include "src/faas/gateway.h"
#include "src/sim/series.h"

namespace nephele {
namespace {

constexpr double kSaturationRps = 1450.0;  // ab with 8 workers, Sec. 7.3

}  // namespace
}  // namespace nephele

int main(int argc, char** argv) {
  using namespace nephele;
  int seconds = argc > 1 ? std::atoi(argv[1]) : 150;
  auto demand = [](double) { return kSaturationRps; };

  EventLoop closs;
  ContainerBackend containers(closs, ContainerBackend::Config{});
  OpenFaasGateway cgw(closs, containers, GatewayConfig{});
  GatewayRunResult cres = cgw.Run(SimDuration::Seconds(seconds), demand);

  SystemConfig scfg;
  scfg.hypervisor.pool_frames = 1024 * 1024;
  NepheleSystem system(scfg);
  GuestManager guests(system);
  (void)system.devices().hostfs().CreateFile("/srv/guest-root/python3");
  UnikernelBackend unikernels(guests, UnikernelBackend::Config{});
  OpenFaasGateway ugw(system.loop(), unikernels, GatewayConfig{});
  GatewayRunResult ures = ugw.Run(SimDuration::Seconds(seconds), demand);

  SeriesTable table("Figure 11: throughput at increasing function-call demand (req/s)",
                    {"seconds", "containers", "unikernels"});
  std::size_t rows = std::min(cres.series.size(), ures.series.size());
  for (std::size_t i = 0; i < rows; i += 2) {
    table.AddRow({cres.series[i].t_seconds, cres.series[i].served_rps,
                  ures.series[i].served_rps});
  }
  table.Print();

  auto print_readiness = [](const char* name, const std::vector<double>& times) {
    std::printf("# %s instance-ready times (s):", name);
    for (std::size_t i = 0; i < times.size() && i < 6; ++i) {
      std::printf(" %.0f", times[i]);
    }
    std::printf("\n");
  };
  print_readiness("containers", cres.readiness_times);
  print_readiness("unikernels", ures.readiness_times);

  PrintSummary("requests served in first 60 s, containers",
               [&] {
                 double sum = 0;
                 for (std::size_t i = 0; i < 60 && i < cres.series.size(); ++i) {
                   sum += cres.series[i].served_rps;
                 }
                 return sum;
               }());
  PrintSummary("requests served in first 60 s, unikernels",
               [&] {
                 double sum = 0;
                 for (std::size_t i = 0; i < 60 && i < ures.series.size(); ++i) {
                   sum += ures.series[i].served_rps;
                 }
                 return sum;
               }());
  PrintSummary("final throughput, containers", cres.series[rows - 1].served_rps, "req/s");
  PrintSummary("final throughput, unikernels", ures.series[rows - 1].served_rps, "req/s");
  return 0;
}
