// Micro-benchmarks (google-benchmark) of the simulator's primitive
// operations. These measure HOST wall-clock cost of the implementation —
// how fast the simulation itself executes — complementing the virtual-time
// figures benches. Useful for keeping the 1000-instance sweeps fast.
//
// With --json=PATH the binary skips google-benchmark and runs the gate's
// fixed op set instead (--suite=clone | sched), writing a BenchJsonWriter
// document: per-op wall ms and ops/sec for serial stage 1, the 64-child
// batch at 1 and 4 staging threads, scheduler cold dispatch and warm-pool
// hits. Any other flag is passed through to google-benchmark.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_args.h"
#include "bench/bench_json.h"
#include "src/apps/udp_ready_app.h"
#include "src/guest/guest_manager.h"
#include "src/guest/ipc.h"
#include "src/sched/scheduler.h"

namespace nephele {
namespace {

void BM_FrameAllocRelease(benchmark::State& state) {
  FrameTable frames(1024);
  for (auto _ : state) {
    auto mfn = frames.Alloc(1);
    benchmark::DoNotOptimize(mfn);
    (void)frames.Release(*mfn);
  }
}
BENCHMARK(BM_FrameAllocRelease);

void BM_CowShareResolve(benchmark::State& state) {
  FrameTable frames(1024);
  for (auto _ : state) {
    auto mfn = frames.Alloc(1);
    (void)frames.ShareFirst(*mfn);
    auto res = frames.ResolveCowWrite(*mfn, 2);
    benchmark::DoNotOptimize(res);
    (void)frames.Release(res->mfn);
    (void)frames.Release(*mfn);
  }
}
BENCHMARK(BM_CowShareResolve);

void BM_XenstoreWrite(benchmark::State& state) {
  EventLoop loop;
  XenstoreDaemon xs(loop, DefaultCostModel());
  std::uint64_t i = 0;
  for (auto _ : state) {
    (void)xs.Write("/bench/key" + std::to_string(i++ % 512), "value");
  }
}
BENCHMARK(BM_XenstoreWrite);

void BM_XsCloneDirectory(benchmark::State& state) {
  EventLoop loop;
  XenstoreDaemon xs(loop, DefaultCostModel());
  for (int i = 0; i < 30; ++i) {
    (void)xs.Write("/local/domain/1/k" + std::to_string(i), std::to_string(i));
  }
  (void)xs.IntroduceDomain(1);
  std::uint64_t c = 2;
  for (auto _ : state) {
    (void)xs.IntroduceDomain(static_cast<DomId>(c));
    (void)xs.XsClone(1, static_cast<DomId>(c), XsCloneOp::kDevVif, "/local/domain/1",
                     "/local/domain/" + std::to_string(c));
    ++c;
  }
}
BENCHMARK(BM_XsCloneDirectory);

void BM_EvtchnSendDeliver(benchmark::State& state) {
  EventLoop loop;
  Hypervisor hv(loop, DefaultCostModel(), HypervisorConfig{.pool_frames = 64});
  auto a = hv.CreateDomain("a", 1);
  auto b = hv.CreateDomain("b", 1);
  (void)hv.UnpauseDomain(*a);
  (void)hv.UnpauseDomain(*b);
  auto port_b = hv.EvtchnAllocUnbound(*b, *a);
  auto port_a = hv.EvtchnBindInterdomain(*a, *b, *port_b);
  hv.SetEvtchnHandler(*b, [](EvtchnPort) {});
  for (auto _ : state) {
    (void)hv.EvtchnSend(*a, *port_a);
    loop.Run();
  }
}
BENCHMARK(BM_EvtchnSendDeliver);

void BM_FullGuestBoot(benchmark::State& state) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 8 * 1024 * 1024;
  NepheleSystem system(cfg);
  GuestManager guests(system);
  std::uint64_t i = 0;
  for (auto _ : state) {
    DomainConfig dcfg;
    dcfg.name = "vm-" + std::to_string(i++);
    auto dom = guests.Launch(dcfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
    system.Settle();
    benchmark::DoNotOptimize(dom);
  }
}
BENCHMARK(BM_FullGuestBoot)->Unit(benchmark::kMicrosecond);

void BM_FullClone(benchmark::State& state) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 16 * 1024 * 1024;
  NepheleSystem system(cfg);
  GuestManager guests(system);
  DomainConfig dcfg;
  dcfg.name = "parent";
  dcfg.max_clones = 2'000'000;  // clamped by pool anyway
  auto dom = guests.Launch(dcfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system.Settle();
  for (auto _ : state) {
    Status s = guests.ContextOf(*dom)->Fork(1, nullptr);
    system.Settle();
    if (!s.ok()) {
      state.SkipWithError("pool exhausted");
      break;
    }
  }
}
BENCHMARK(BM_FullClone)->Unit(benchmark::kMicrosecond);

// Host wall-clock of one 64-child clone batch (stage 1 only) as a function
// of the staging worker-thread count. Serial vs 4 threads is the speedup
// figure for the worker pool; virtual time is identical across the Args.
void BM_ParallelCloneBatch64(benchmark::State& state) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 2 * 1024 * 1024;
  cfg.clone_worker_threads = static_cast<unsigned>(state.range(0));
  NepheleSystem system(cfg);
  DomainConfig dcfg;
  dcfg.name = "parent";
  dcfg.memory_mb = 64;  // 16k-page p2m: staging dominates the batch
  dcfg.max_clones = 1u << 20;
  auto parent = system.toolstack().CreateDomain(dcfg);
  if (!parent.ok()) {
    state.SkipWithError("parent boot failed");
    return;
  }
  system.Settle();
  const Domain* p = system.hypervisor().FindDomain(*parent);
  const Mfn start_info = p->p2m[p->start_info_gfn].mfn;
  for (auto _ : state) {
    auto children = system.clone_engine().Clone({*parent, *parent, start_info, 64});
    if (!children.ok()) {
      state.SkipWithError("clone failed");
      break;
    }
    state.PauseTiming();
    system.Settle();  // run stage 2, then retire the batch
    for (DomId c : *children) {
      (void)system.toolstack().DestroyDomain(c);
      if (system.hypervisor().FindDomain(c) != nullptr) {
        (void)system.hypervisor().DestroyDomain(c);
      }
    }
    system.Settle();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ParallelCloneBatch64)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_IdcPipeRoundTrip(benchmark::State& state) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 64 * 1024;
  NepheleSystem system(cfg);
  GuestManager guests(system);
  DomainConfig dcfg;
  dcfg.name = "p";
  dcfg.max_clones = 2;
  dcfg.with_vif = false;
  auto dom = guests.Launch(dcfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system.Settle();
  auto pipe = IdcPipe::Create(system.hypervisor(), *dom);
  (void)guests.ContextOf(*dom)->Fork(1, nullptr);
  system.Settle();
  DomId child = system.hypervisor().FindDomain(*dom)->children.front();
  std::vector<std::uint8_t> payload(256, 0x55);
  for (auto _ : state) {
    (void)(*pipe)->Write(*dom, payload);
    auto out = (*pipe)->Read(child, 256);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_IdcPipeRoundTrip);

// ---------------------------------------------------------------------
// Gate mode (--json=PATH --suite=clone|sched): a fixed op set measured
// with plain steady_clock loops — small, reproducible op counts rather
// than google-benchmark's adaptive iteration, so a run takes ~a second.
// ---------------------------------------------------------------------

struct OpTiming {
  double ms_per_op = 0.0;
  double ops_per_sec = 0.0;
};

template <typename Op>
OpTiming TimeOps(int iters, Op&& op) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    op();
  }
  double ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
                  .count();
  OpTiming t;
  t.ms_per_op = ms / iters;
  t.ops_per_sec = t.ms_per_op > 0.0 ? 1000.0 / t.ms_per_op : 0.0;
  return t;
}

void DestroyChildren(NepheleSystem& system, const std::vector<DomId>& children) {
  for (DomId c : children) {
    (void)system.toolstack().DestroyDomain(c);
    if (system.hypervisor().FindDomain(c) != nullptr) {
      (void)system.hypervisor().DestroyDomain(c);
    }
  }
  system.Settle();
}

// Wall cost of CLONEOP stage 1 for a single child, serial staging. Only the
// Clone() call is timed; settle + teardown run off the clock.
OpTiming MeasureSerialStage1(int iters) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 1024 * 1024;
  cfg.clone_worker_threads = 1;
  NepheleSystem system(cfg);
  DomainConfig dcfg;
  dcfg.name = "parent";
  dcfg.memory_mb = 16;
  dcfg.max_clones = 1u << 20;
  auto parent = system.toolstack().CreateDomain(dcfg);
  system.Settle();
  const Domain* p = system.hypervisor().FindDomain(*parent);
  const Mfn start_info = p->p2m[p->start_info_gfn].mfn;
  double total_ms = 0.0;
  for (int i = 0; i < iters; ++i) {
    auto start = std::chrono::steady_clock::now();
    auto children = system.clone_engine().Clone({*parent, *parent, start_info, 1});
    total_ms += std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                          start)
                    .count();
    system.Settle();
    if (!children.ok()) {
      break;
    }
    DestroyChildren(system, *children);
  }
  OpTiming t;
  t.ms_per_op = total_ms / iters;
  t.ops_per_sec = t.ms_per_op > 0.0 ? 1000.0 / t.ms_per_op : 0.0;
  return t;
}

// Wall cost of one 64-child batch (stage 1) at `threads` staging threads —
// the BM_ParallelCloneBatch64 figure, fixed at the gate's two points.
OpTiming MeasureBatch64(unsigned threads, int batches) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 2 * 1024 * 1024;
  cfg.clone_worker_threads = threads;
  NepheleSystem system(cfg);
  DomainConfig dcfg;
  dcfg.name = "parent";
  dcfg.memory_mb = 64;
  dcfg.max_clones = 1u << 20;
  auto parent = system.toolstack().CreateDomain(dcfg);
  system.Settle();
  const Domain* p = system.hypervisor().FindDomain(*parent);
  const Mfn start_info = p->p2m[p->start_info_gfn].mfn;
  double total_ms = 0.0;
  for (int i = 0; i < batches; ++i) {
    auto start = std::chrono::steady_clock::now();
    auto children = system.clone_engine().Clone({*parent, *parent, start_info, 64});
    total_ms += std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                          start)
                    .count();
    system.Settle();
    if (!children.ok()) {
      break;
    }
    DestroyChildren(system, *children);
  }
  OpTiming t;
  t.ms_per_op = total_ms / batches;
  t.ops_per_sec = t.ms_per_op > 0.0 ? 1000.0 / t.ms_per_op : 0.0;
  return t;
}

// Scheduler round trips. warm_pool_capacity 0 keeps every acquire cold
// (full dispatch: window, batch, grant); the warm variant parks the child
// between rounds so every acquire is a pool hit.
OpTiming MeasureSchedulerRoundTrip(std::size_t warm_pool_capacity, int iters) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 256 * 1024;
  cfg.sched.warm_pool_capacity = warm_pool_capacity;
  NepheleSystem system(cfg);
  CloneScheduler sched(system);
  DomainConfig dcfg;
  dcfg.name = "parent";
  dcfg.memory_mb = 4;
  dcfg.max_clones = 1u << 20;
  auto parent = system.toolstack().CreateDomain(dcfg);
  system.Settle();
  DomId got = kDomInvalid;
  auto round = [&] {
    got = kDomInvalid;
    (void)sched.Acquire({kDom0, *parent, kInvalidMfn, 1}, [&got](Result<DomId> r) {
      if (r.ok()) {
        got = *r;
      }
    });
    system.Settle();
    if (got != kDomInvalid) {
      (void)sched.Release(got);
      system.Settle();
    }
  };
  if (warm_pool_capacity > 0) {
    round();  // prime the pool off the clock
  }
  return TimeOps(iters, round);
}

int RunGateMode(const BenchArgs& args) {
  const std::string suite = args.Flag("suite", "clone");
  BenchJsonWriter json(suite);
  if (suite == "clone") {
    OpTiming serial = MeasureSerialStage1(64);
    OpTiming t1 = MeasureBatch64(1, 6);
    OpTiming t4 = MeasureBatch64(4, 6);
    json.Add("serial_stage1_ms", serial.ms_per_op, "ms", MetricDir::kLowerIsBetter,
             MetricKind::kWall);
    json.Add("serial_stage1_ops_per_sec", serial.ops_per_sec, "ops_per_sec",
             MetricDir::kHigherIsBetter, MetricKind::kWall);
    json.Add("batch64_t1_ms", t1.ms_per_op, "ms", MetricDir::kLowerIsBetter, MetricKind::kWall);
    json.Add("batch64_t4_ms", t4.ms_per_op, "ms", MetricDir::kLowerIsBetter, MetricKind::kWall);
  } else if (suite == "sched") {
    OpTiming dispatch = MeasureSchedulerRoundTrip(0, 64);
    OpTiming warm = MeasureSchedulerRoundTrip(4, 64);
    json.Add("dispatch_ms", dispatch.ms_per_op, "ms", MetricDir::kLowerIsBetter,
             MetricKind::kWall);
    json.Add("dispatch_ops_per_sec", dispatch.ops_per_sec, "ops_per_sec",
             MetricDir::kHigherIsBetter, MetricKind::kWall);
    json.Add("warm_hit_ms", warm.ms_per_op, "ms", MetricDir::kLowerIsBetter, MetricKind::kWall);
    json.Add("warm_hit_ops_per_sec", warm.ops_per_sec, "ops_per_sec",
             MetricDir::kHigherIsBetter, MetricKind::kWall);
  } else {
    std::fprintf(stderr, "unknown --suite=%s (clone | sched)\n", suite.c_str());
    return 2;
  }
  return json.WriteFile(args.json_path()) ? 0 : 1;
}

}  // namespace
}  // namespace nephele

int main(int argc, char** argv) {
  using namespace nephele;
  std::vector<std::string> passthrough;
  BenchArgs args(argc, argv, {}, {"suite"}, &passthrough);
  if (!args.json_path().empty()) {
    return RunGateMode(args);
  }
  std::vector<char*> bench_argv;
  bench_argv.reserve(passthrough.size());
  for (std::string& s : passthrough) {
    bench_argv.push_back(s.data());
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
