// Micro-benchmarks (google-benchmark) of the simulator's primitive
// operations. These measure HOST wall-clock cost of the implementation —
// how fast the simulation itself executes — complementing the virtual-time
// figures benches. Useful for keeping the 1000-instance sweeps fast.

#include <benchmark/benchmark.h>

#include "src/apps/udp_ready_app.h"
#include "src/guest/guest_manager.h"
#include "src/guest/ipc.h"

namespace nephele {
namespace {

void BM_FrameAllocRelease(benchmark::State& state) {
  FrameTable frames(1024);
  for (auto _ : state) {
    auto mfn = frames.Alloc(1);
    benchmark::DoNotOptimize(mfn);
    (void)frames.Release(*mfn);
  }
}
BENCHMARK(BM_FrameAllocRelease);

void BM_CowShareResolve(benchmark::State& state) {
  FrameTable frames(1024);
  for (auto _ : state) {
    auto mfn = frames.Alloc(1);
    (void)frames.ShareFirst(*mfn);
    auto res = frames.ResolveCowWrite(*mfn, 2);
    benchmark::DoNotOptimize(res);
    (void)frames.Release(res->mfn);
    (void)frames.Release(*mfn);
  }
}
BENCHMARK(BM_CowShareResolve);

void BM_XenstoreWrite(benchmark::State& state) {
  EventLoop loop;
  XenstoreDaemon xs(loop, DefaultCostModel());
  std::uint64_t i = 0;
  for (auto _ : state) {
    (void)xs.Write("/bench/key" + std::to_string(i++ % 512), "value");
  }
}
BENCHMARK(BM_XenstoreWrite);

void BM_XsCloneDirectory(benchmark::State& state) {
  EventLoop loop;
  XenstoreDaemon xs(loop, DefaultCostModel());
  for (int i = 0; i < 30; ++i) {
    (void)xs.Write("/local/domain/1/k" + std::to_string(i), std::to_string(i));
  }
  (void)xs.IntroduceDomain(1);
  std::uint64_t c = 2;
  for (auto _ : state) {
    (void)xs.IntroduceDomain(static_cast<DomId>(c));
    (void)xs.XsClone(1, static_cast<DomId>(c), XsCloneOp::kDevVif, "/local/domain/1",
                     "/local/domain/" + std::to_string(c));
    ++c;
  }
}
BENCHMARK(BM_XsCloneDirectory);

void BM_EvtchnSendDeliver(benchmark::State& state) {
  EventLoop loop;
  Hypervisor hv(loop, DefaultCostModel(), HypervisorConfig{.pool_frames = 64});
  auto a = hv.CreateDomain("a", 1);
  auto b = hv.CreateDomain("b", 1);
  (void)hv.UnpauseDomain(*a);
  (void)hv.UnpauseDomain(*b);
  auto port_b = hv.EvtchnAllocUnbound(*b, *a);
  auto port_a = hv.EvtchnBindInterdomain(*a, *b, *port_b);
  hv.SetEvtchnHandler(*b, [](EvtchnPort) {});
  for (auto _ : state) {
    (void)hv.EvtchnSend(*a, *port_a);
    loop.Run();
  }
}
BENCHMARK(BM_EvtchnSendDeliver);

void BM_FullGuestBoot(benchmark::State& state) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 8 * 1024 * 1024;
  NepheleSystem system(cfg);
  GuestManager guests(system);
  std::uint64_t i = 0;
  for (auto _ : state) {
    DomainConfig dcfg;
    dcfg.name = "vm-" + std::to_string(i++);
    auto dom = guests.Launch(dcfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
    system.Settle();
    benchmark::DoNotOptimize(dom);
  }
}
BENCHMARK(BM_FullGuestBoot)->Unit(benchmark::kMicrosecond);

void BM_FullClone(benchmark::State& state) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 16 * 1024 * 1024;
  NepheleSystem system(cfg);
  GuestManager guests(system);
  DomainConfig dcfg;
  dcfg.name = "parent";
  dcfg.max_clones = 2'000'000;  // clamped by pool anyway
  auto dom = guests.Launch(dcfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system.Settle();
  for (auto _ : state) {
    Status s = guests.ContextOf(*dom)->Fork(1, nullptr);
    system.Settle();
    if (!s.ok()) {
      state.SkipWithError("pool exhausted");
      break;
    }
  }
}
BENCHMARK(BM_FullClone)->Unit(benchmark::kMicrosecond);

// Host wall-clock of one 64-child clone batch (stage 1 only) as a function
// of the staging worker-thread count. Serial vs 4 threads is the speedup
// figure for the worker pool; virtual time is identical across the Args.
void BM_ParallelCloneBatch64(benchmark::State& state) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 2 * 1024 * 1024;
  cfg.clone_worker_threads = static_cast<unsigned>(state.range(0));
  NepheleSystem system(cfg);
  DomainConfig dcfg;
  dcfg.name = "parent";
  dcfg.memory_mb = 64;  // 16k-page p2m: staging dominates the batch
  dcfg.max_clones = 1u << 20;
  auto parent = system.toolstack().CreateDomain(dcfg);
  if (!parent.ok()) {
    state.SkipWithError("parent boot failed");
    return;
  }
  system.Settle();
  const Domain* p = system.hypervisor().FindDomain(*parent);
  const Mfn start_info = p->p2m[p->start_info_gfn].mfn;
  for (auto _ : state) {
    auto children = system.clone_engine().Clone({*parent, *parent, start_info, 64});
    if (!children.ok()) {
      state.SkipWithError("clone failed");
      break;
    }
    state.PauseTiming();
    system.Settle();  // run stage 2, then retire the batch
    for (DomId c : *children) {
      (void)system.toolstack().DestroyDomain(c);
      if (system.hypervisor().FindDomain(c) != nullptr) {
        (void)system.hypervisor().DestroyDomain(c);
      }
    }
    system.Settle();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ParallelCloneBatch64)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_IdcPipeRoundTrip(benchmark::State& state) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 64 * 1024;
  NepheleSystem system(cfg);
  GuestManager guests(system);
  DomainConfig dcfg;
  dcfg.name = "p";
  dcfg.max_clones = 2;
  dcfg.with_vif = false;
  auto dom = guests.Launch(dcfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system.Settle();
  auto pipe = IdcPipe::Create(system.hypervisor(), *dom);
  (void)guests.ContextOf(*dom)->Fork(1, nullptr);
  system.Settle();
  DomId child = system.hypervisor().FindDomain(*dom)->children.front();
  std::vector<std::uint8_t> payload(256, 0x55);
  for (auto _ : state) {
    (void)(*pipe)->Write(*dom, payload);
    auto out = (*pipe)->Read(child, 256);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_IdcPipeRoundTrip);

}  // namespace
}  // namespace nephele

BENCHMARK_MAIN();
