// Figure 5 — Memory consumption for booting vs. cloning.
//
// Sec. 6.2 setup: 16 GiB machine split into 4 GiB Dom0 + 12 GiB hypervisor
// pool; the Mini-OS UDP-server image is instantiated until memory runs out,
// once by booting fresh VMs and once by cloning a single parent. Reports the
// free-memory curves (hypervisor pool and Dom0) and the final instance
// counts (paper: 2800 boots vs. 8900 clones, a 3x density gain).
//
// Usage: bench_fig05_memory_density [sample_stride]   (default 100)

#include <cstdio>
#include <cstdlib>

#include "bench/bench_args.h"
#include "src/apps/udp_ready_app.h"
#include "src/guest/guest_manager.h"
#include "src/sim/series.h"

namespace nephele {
namespace {

SystemConfig PaperPool() {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 12ull * kGiB / kPageSize;
  return cfg;
}

struct DensityPoint {
  std::size_t instances;
  double hyp_free_gb;
  double dom0_free_gb;
};

DomainConfig UdpVmConfig(const std::string& name, std::uint32_t max_clones) {
  DomainConfig cfg;
  cfg.name = name;
  cfg.memory_mb = 4;
  cfg.max_clones = max_clones;
  return cfg;
}

std::vector<DensityPoint> RunBootDensity(std::size_t stride, std::size_t* total) {
  NepheleSystem system(PaperPool());
  GuestManager guests(system);
  std::vector<DensityPoint> points;
  std::size_t count = 0;
  while (true) {
    auto dom = guests.Launch(UdpVmConfig("udp-" + std::to_string(count), 0),
                             std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
    if (!dom.ok()) {
      break;  // pool exhausted
    }
    system.Settle();
    ++count;
    if (count % stride == 0) {
      points.push_back(DensityPoint{
          count,
          static_cast<double>(system.hypervisor().FreePoolFrames()) * kPageSize / kGiB,
          static_cast<double>(system.toolstack().Dom0FreeBytes()) / kGiB});
    }
  }
  *total = count;
  return points;
}

std::vector<DensityPoint> RunCloneDensity(std::size_t stride, std::size_t* total) {
  NepheleSystem system(PaperPool());
  GuestManager guests(system);
  Bond bond;
  system.toolstack().SetDefaultSwitch(&bond);
  auto parent = guests.Launch(UdpVmConfig("udp-parent", 60000),
                              std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  if (!parent.ok()) {
    std::fprintf(stderr, "parent boot failed\n");
    *total = 0;
    return {};
  }
  system.Settle();
  std::vector<DensityPoint> points;
  std::size_t count = 1;  // the parent counts as an instance
  while (true) {
    Status s = guests.ContextOf(*parent)->Fork(1, nullptr);
    if (!s.ok()) {
      break;
    }
    system.Settle();
    // A failed clone leaves no child behind; detect via family size.
    std::size_t children = system.hypervisor().FindDomain(*parent)->children.size();
    if (children + 1 == count) {
      break;
    }
    count = children + 1;
    if (count % stride == 0) {
      points.push_back(DensityPoint{
          count,
          static_cast<double>(system.hypervisor().FreePoolFrames()) * kPageSize / kGiB,
          static_cast<double>(system.toolstack().Dom0FreeBytes()) / kGiB});
    }
    if (system.hypervisor().FreePoolFrames() < 128) {
      break;  // next clone cannot fit its private pages
    }
  }
  *total = count;
  return points;
}

}  // namespace
}  // namespace nephele

int main(int argc, char** argv) {
  using namespace nephele;
  BenchArgs args(argc, argv, {{"stride", 100, "instances between samples"}});
  std::size_t stride = static_cast<std::size_t>(args.Positional("stride"));

  std::size_t boot_total = 0, clone_total = 0;
  auto boot = RunBootDensity(stride, &boot_total);
  auto clone = RunCloneDensity(stride, &clone_total);

  SeriesTable table("Figure 5: free memory vs instances (GB); -1 = series ended",
                    {"instances", "boot_hyp_free", "boot_dom0_free", "clone_hyp_free",
                     "clone_dom0_free"});
  std::size_t rows = std::max(boot.size(), clone.size());
  for (std::size_t i = 0; i < rows; ++i) {
    double idx = static_cast<double>((i + 1) * stride);
    table.AddRow({idx, i < boot.size() ? boot[i].hyp_free_gb : -1.0,
                  i < boot.size() ? boot[i].dom0_free_gb : -1.0,
                  i < clone.size() ? clone[i].hyp_free_gb : -1.0,
                  i < clone.size() ? clone[i].dom0_free_gb : -1.0});
  }
  table.Print();

  PrintSummary("instances by booting", static_cast<double>(boot_total));
  PrintSummary("instances by cloning", static_cast<double>(clone_total));
  PrintSummary("density gain", static_cast<double>(clone_total) / static_cast<double>(boot_total),
               "x");
  PrintSummary("memory per booted instance",
               12.0 * 1024.0 / static_cast<double>(boot_total), "MiB");
  PrintSummary("memory per clone", 12.0 * 1024.0 / static_cast<double>(clone_total), "MiB");
  double saved_gb = static_cast<double>(clone_total - boot_total) * 4.0 / 1024.0;
  PrintSummary("total memory saved vs booting the same count", saved_gb, "GiB");
  return 0;
}
