// Extension experiments (not in the paper — ours, for the Sec. 5.3 vbd
// device type and the Sec. 6.2 "losses" discussion):
//
//  1. Disk clone time vs disk size: snapshotting a block table is O(blocks)
//     reference counting — the storage twin of Fig. 6's memory curves.
//  2. Disk density: clones cost only their divergence, like Fig. 5.
//  3. Post-clone COW write overhead: the first write to a shared page pays
//     the fault + copy; subsequent writes are free (Sec. 6.2: "creating
//     copies of memory pages on write operations generate an overhead on
//     the operations themselves").

#include <cstdio>

#include "bench/bench_args.h"
#include "src/apps/udp_ready_app.h"
#include "src/guest/guest_manager.h"
#include "src/sim/series.h"

namespace nephele {
namespace {

void DiskCloneTimes() {
  SeriesTable table("Extension 1: vbd disk clone time vs size (ms)",
                    {"disk_mb", "create_ms", "clone_ms", "full_copy_ms_est"});
  for (std::size_t mb : {16ul, 64ul, 256ul, 1024ul, 4096ul}) {
    EventLoop loop;
    VbdBackend backend(loop, DefaultCostModel());
    SimTime t0 = loop.Now();
    (void)backend.CreateDisk(DeviceId{1, DeviceType::kVbd, 0}, mb);
    SimTime t1 = loop.Now();
    (void)backend.CloneDisk(DeviceId{1, DeviceType::kVbd, 0}, DeviceId{2, DeviceType::kVbd, 0});
    SimTime t2 = loop.Now();
    // A naive qcow-less copy would transfer every byte (~2 GB/s).
    double full_copy_ms =
        DefaultCostModel().VbdTransferCost(mb * kMiB).ToMillis();
    table.AddRow({static_cast<double>(mb), (t1 - t0).ToMillis(), (t2 - t1).ToMillis(),
                  full_copy_ms});
  }
  table.Print();
}

void DiskDensity() {
  EventLoop loop;
  VbdBackend backend(loop, DefaultCostModel());
  const std::size_t disk_mb = 64;
  (void)backend.CreateDisk(DeviceId{1, DeviceType::kVbd, 0}, disk_mb);
  // Populate 8 MiB of the base image.
  std::vector<std::uint8_t> data(kVbdBlockSize, 0x11);
  for (std::size_t b = 0; b < 8 * kMiB / kVbdBlockSize; ++b) {
    (void)backend.Write(DeviceId{1, DeviceType::kVbd, 0}, b * kVbdBlockSize, data.data(),
                        data.size());
  }
  std::size_t base_blocks = backend.store().live_blocks();
  const int kClones = 50;
  for (int i = 0; i < kClones; ++i) {
    DeviceId child{static_cast<DomId>(100 + i), DeviceType::kVbd, 0};
    (void)backend.CloneDisk(DeviceId{1, DeviceType::kVbd, 0}, child);
    // Each clone diverges by 1 MiB of writes.
    for (std::size_t b = 0; b < kMiB / kVbdBlockSize; ++b) {
      (void)backend.Write(child, b * kVbdBlockSize, data.data(), data.size());
    }
  }
  std::size_t blocks_after = backend.store().live_blocks();
  double per_clone_mb = static_cast<double>(blocks_after - base_blocks) * kVbdBlockSize /
                        kClones / static_cast<double>(kMiB);
  PrintSummary("Extension 2: disk blocks per clone (1 MiB divergence)", per_clone_mb, "MiB");
  PrintSummary("Extension 2: naive per-clone cost would be",
               static_cast<double>(disk_mb), "MiB");
}

void CowWriteOverhead() {
  SystemConfig scfg;
  scfg.hypervisor.pool_frames = 64 * 1024;
  NepheleSystem system(scfg);
  GuestManager guests(system);
  DomainConfig cfg;
  cfg.name = "coww";
  cfg.memory_mb = 16;
  cfg.max_clones = 2;
  cfg.with_vif = false;
  auto dom = guests.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system.Settle();
  GuestMemoryLayout layout = ComputeGuestLayout(cfg, 1024);
  Gfn gfn = static_cast<Gfn>(layout.heap_first_gfn);
  const int kPages = 512;

  // Baseline: writes to private pages.
  std::uint8_t v = 1;
  SimTime t0 = system.Now();
  for (int i = 0; i < kPages; ++i) {
    (void)system.hypervisor().WriteGuestPage(*dom, gfn + static_cast<Gfn>(i), 0, &v, 1);
  }
  double private_us = (system.Now() - t0).ToMicros() / kPages;

  // Clone, then write the now-shared pages: each write COW-faults once.
  (void)guests.ContextOf(*dom)->Fork(1, nullptr);
  system.Settle();
  SimTime t1 = system.Now();
  for (int i = 0; i < kPages; ++i) {
    (void)system.hypervisor().WriteGuestPage(*dom, gfn + static_cast<Gfn>(i), 0, &v, 1);
  }
  double cow_us = (system.Now() - t1).ToMicros() / kPages;

  // Second pass: sharing already broken, back to baseline.
  SimTime t2 = system.Now();
  for (int i = 0; i < kPages; ++i) {
    (void)system.hypervisor().WriteGuestPage(*dom, gfn + static_cast<Gfn>(i), 0, &v, 1);
  }
  double after_us = (system.Now() - t2).ToMicros() / kPages;

  PrintSummary("Extension 3: private page write", private_us, "us/page");
  PrintSummary("Extension 3: first write after clone (COW fault+copy)", cow_us, "us/page");
  PrintSummary("Extension 3: second write after clone", after_us, "us/page");
  PrintSummary("Extension 3: COW pages copied",
               static_cast<double>(system.hypervisor().FindDomain(*dom)->cow_pages_copied));
}

}  // namespace
}  // namespace nephele

int main(int argc, char** argv) {
  using namespace nephele;
  BenchArgs args(argc, argv, {});
  (void)args;
  std::printf("# Storage & COW extension experiments (see DESIGN.md)\n");
  DiskCloneTimes();
  DiskDensity();
  CowWriteOverhead();
  return 0;
}
