// BenchArgs: the one command-line convention shared by every bench binary.
//
//   bench_figNN [positional...] [--flag=value ...]
//
// Positional parameters are declared by the bench (name + default) and
// parsed in order; `--key=value` flags may appear anywhere. Two flags are
// common to the whole fleet:
//
//   --json=PATH   machine-readable result mode: the bench writes its
//                 BenchJsonWriter document (see bench_json.h) to PATH for
//                 the perf-regression gate (scripts/bench_gate.sh)
//   --help        print the declared parameters and exit
//
// Unknown flags are an error (exit 2) so a typo cannot silently run a bench
// with defaults — except in pass-through mode (bench_micro_ops hands
// unparsed flags to google-benchmark).

#ifndef BENCH_BENCH_ARGS_H_
#define BENCH_BENCH_ARGS_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace nephele {

struct BenchArgSpec {
  std::string name;
  long value = 0;  // default, replaced by the parsed positional
  std::string help;
};

class BenchArgs {
 public:
  // `allowed_flags` lists the --key names this bench understands beyond the
  // common --json/--help (e.g. "suite"). When `passthrough` is non-null,
  // unknown flags are collected there (argv[0] is prepended) instead of
  // being rejected — the google-benchmark escape hatch.
  BenchArgs(int argc, char** argv, std::vector<BenchArgSpec> positional,
            std::vector<std::string> allowed_flags = {},
            std::vector<std::string>* passthrough = nullptr)
      : positional_(std::move(positional)) {
    if (passthrough != nullptr) {
      passthrough->push_back(argv[0]);
    }
    std::size_t next_positional = 0;
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string_view body = arg.substr(2);
        std::size_t eq = body.find('=');
        std::string key(body.substr(0, eq));
        std::string value(eq == std::string_view::npos ? "" : body.substr(eq + 1));
        if (key == "help") {
          PrintUsage(argv[0], allowed_flags);
          std::exit(0);
        }
        bool known = key == "json";
        for (const std::string& f : allowed_flags) {
          known = known || f == key;
        }
        if (!known) {
          if (passthrough != nullptr) {
            passthrough->push_back(std::string(arg));
            continue;
          }
          std::fprintf(stderr, "unknown flag --%s (try --help)\n", key.c_str());
          std::exit(2);
        }
        flags_[key] = value;
      } else if (next_positional < positional_.size()) {
        positional_[next_positional++].value = std::atol(argv[i]);
      } else if (passthrough != nullptr) {
        passthrough->push_back(std::string(arg));
      } else {
        std::fprintf(stderr, "unexpected argument '%s' (try --help)\n", argv[i]);
        std::exit(2);
      }
    }
  }

  // The parsed (or default) value of a declared positional parameter.
  long Positional(std::string_view name) const {
    for (const BenchArgSpec& spec : positional_) {
      if (spec.name == name) {
        return spec.value;
      }
    }
    std::fprintf(stderr, "bench bug: undeclared positional '%.*s'\n",
                 static_cast<int>(name.size()), name.data());
    std::exit(2);
  }

  bool HasFlag(std::string_view key) const { return flags_.count(std::string(key)) != 0; }
  std::string Flag(std::string_view key, std::string default_value = "") const {
    auto it = flags_.find(std::string(key));
    return it == flags_.end() ? default_value : it->second;
  }

  // Empty when the bench should print its human table; otherwise the path
  // the BenchJsonWriter document goes to.
  std::string json_path() const { return Flag("json"); }

 private:
  void PrintUsage(const char* argv0, const std::vector<std::string>& allowed_flags) const {
    std::printf("usage: %s", argv0);
    for (const BenchArgSpec& spec : positional_) {
      std::printf(" [%s]", spec.name.c_str());
    }
    std::printf(" [--json=PATH]");
    for (const std::string& f : allowed_flags) {
      std::printf(" [--%s=VALUE]", f.c_str());
    }
    std::printf("\n");
    for (const BenchArgSpec& spec : positional_) {
      std::printf("  %-24s %s (default %ld)\n", spec.name.c_str(), spec.help.c_str(),
                  spec.value);
    }
  }

  std::vector<BenchArgSpec> positional_;
  std::map<std::string, std::string> flags_;
};

}  // namespace nephele

#endif  // BENCH_BENCH_ARGS_H_
