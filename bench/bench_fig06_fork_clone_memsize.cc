// Figure 6 — fork() and cloning duration vs. resident allocation size.
//
// The memapp workload allocates a resident chunk (1 MiB .. 4096 MiB) and is
// then duplicated twice: as a Linux process (fork) and as a Unikraft VM
// (Nephele clone). Sec. 6.2 methodology: I/O devices are skipped; only the
// mandatory second-stage operations run. The first call is always slower
// (COW marking / first-time dom_cow transfer); the figure reports both,
// plus the flat userspace-operations series (3 ms first / 1.9 ms cached).
//
// Usage: bench_fig06_fork_clone_memsize [repetitions]   (default 3; paper: 10)

#include <cstdio>
#include <cstdlib>

#include "bench/bench_args.h"
#include "src/apps/mem_app.h"
#include "src/baseline/linux_process.h"
#include "src/guest/guest_manager.h"
#include "src/sim/series.h"

namespace nephele {
namespace {

struct Sample {
  double fork1_ms = 0;
  double fork2_ms = 0;
  double clone1_ms = 0;
  double clone2_ms = 0;
  double userspace1_ms = 0;
  double userspace2_ms = 0;
};

Sample MeasureOne(std::size_t alloc_mb) {
  Sample s;
  // --- Linux process ---
  {
    EventLoop loop;
    LinuxProcessModel model(loop, DefaultCostModel());
    auto pid = model.Spawn(alloc_mb);
    SimTime t0 = loop.Now();
    auto c1 = model.Fork(*pid);
    s.fork1_ms = (loop.Now() - t0).ToMillis();
    (void)model.Exit(*c1);
    SimTime t1 = loop.Now();
    auto c2 = model.Fork(*pid);
    s.fork2_ms = (loop.Now() - t1).ToMillis();
    (void)model.Exit(*c2);
  }
  // --- Unikraft VM ---
  {
    SystemConfig cfg;
    cfg.hypervisor.pool_frames = (alloc_mb + 64) * 3 * kMiB / kPageSize;
    NepheleSystem system(cfg);
    GuestManager guests(system);
    DomainConfig dcfg;
    dcfg.name = "memapp";
    dcfg.memory_mb = alloc_mb + 8;  // app chunk + unikernel image/heap slack
    dcfg.max_clones = 8;
    dcfg.with_vif = false;  // Sec. 6.2: I/O device cloning skipped
    auto dom = guests.Launch(dcfg, std::make_unique<MemApp>(MemAppConfig{alloc_mb, 4000}));
    if (!dom.ok()) {
      std::fprintf(stderr, "launch failed: %s\n", dom.status().ToString().c_str());
      return s;
    }
    system.Settle();

    SimTime t0 = system.Now();
    (void)guests.ContextOf(*dom)->Fork(1, nullptr);
    system.Settle();
    s.clone1_ms = (system.Now() - t0).ToMillis();
    s.userspace1_ms = system.xencloned().stats().last_second_stage.ToMillis();

    SimTime t1 = system.Now();
    (void)guests.ContextOf(*dom)->Fork(1, nullptr);
    system.Settle();
    s.clone2_ms = (system.Now() - t1).ToMillis();
    s.userspace2_ms = system.xencloned().stats().last_second_stage.ToMillis();
  }
  return s;
}

}  // namespace
}  // namespace nephele

int main(int argc, char** argv) {
  using namespace nephele;
  BenchArgs args(argc, argv, {{"reps", 3, "repetitions per size"}});
  int reps = static_cast<int>(args.Positional("reps"));

  SeriesTable table(
      "Figure 6: fork/clone duration vs allocation size (ms, log-log in the paper)",
      {"alloc_mb", "process_fork1", "process_fork2", "unikraft_clone1", "unikraft_clone2",
       "userspace_ops_first", "userspace_ops_cached"});

  for (std::size_t mb : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}) {
    RunningStat f1, f2, c1, c2, u1, u2;
    for (int r = 0; r < reps; ++r) {
      Sample s = MeasureOne(mb);
      f1.Add(s.fork1_ms);
      f2.Add(s.fork2_ms);
      c1.Add(s.clone1_ms);
      c2.Add(s.clone2_ms);
      u1.Add(s.userspace1_ms);
      u2.Add(s.userspace2_ms);
    }
    table.AddRow({static_cast<double>(mb), f1.mean(), f2.mean(), c1.mean(), c2.mean(),
                  u1.mean(), u2.mean()});
  }
  table.Print();

  // Headline anchors from Sec. 6.2.
  auto col = [&](std::size_t c) { return table.Column(c); };
  double fork2_small = col(2).front(), clone2_small = col(4).front();
  double fork2_big = col(2).back(), clone2_big = col(4).back();
  PrintSummary("2nd fork vs 2nd clone gap at 1 MiB",
               (clone2_small - fork2_small) / fork2_small * 100.0, "%");
  PrintSummary("2nd fork vs 2nd clone gap at 4096 MiB",
               (clone2_big - fork2_big) / fork2_big * 100.0, "%");
  PrintSummary("userspace ops, first clone", col(5).front(), "ms");
  PrintSummary("userspace ops, cached", col(6).back(), "ms");
  return 0;
}
