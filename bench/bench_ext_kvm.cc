// Extension experiment: the Xen port vs. the KVM port (Sec. 5.3 / Sec. 9
// future work). Same guest size, same clone semantics, different platform
// mechanics:
//   * Xen: explicit CLONEOP, private pages (rings/buffers/PTs) duplicated,
//     Xenstore second stage.
//   * KVM: VMM fork — whole-memory COW, no private classes, kvmcloned
//     re-registers vhost and attaches the tap.

#include <cstdio>

#include "bench/bench_args.h"
#include "src/apps/udp_ready_app.h"
#include "src/guest/guest_manager.h"
#include "src/kvm/kvmcloned.h"
#include "src/sim/series.h"

namespace nephele {
namespace {

struct PortResult {
  double clone_ms = 0;
  double upfront_mb = 0;
};

PortResult MeasureXen(std::size_t memory_mb, int clones) {
  SystemConfig scfg;
  scfg.hypervisor.pool_frames = 512 * 1024;
  NepheleSystem system(scfg);
  GuestManager guests(system);
  DomainConfig cfg;
  cfg.name = "xen-guest";
  cfg.memory_mb = memory_mb;
  cfg.max_clones = static_cast<std::uint32_t>(clones);
  auto dom = guests.Launch(cfg, std::make_unique<UdpReadyApp>(UdpReadyConfig{}));
  system.Settle();
  std::size_t free_before = system.hypervisor().FreePoolFrames();
  SimTime t0 = system.Now();
  for (int i = 0; i < clones; ++i) {
    (void)guests.ContextOf(*dom)->Fork(1, nullptr);
    system.Settle();
  }
  PortResult r;
  r.clone_ms = (system.Now() - t0).ToMillis() / clones;
  r.upfront_mb = static_cast<double>(free_before - system.hypervisor().FreePoolFrames()) *
                 kPageSize / clones / (1 << 20);
  return r;
}

PortResult MeasureKvm(std::size_t memory_mb, int clones) {
  EventLoop loop;
  KvmHost host(loop, DefaultCostModel(), 512 * 1024);
  Bridge bridge;
  Kvmcloned daemon(host, bridge);
  auto vm = host.CreateVm("kvm-guest", 1);
  (void)host.SetUserMemoryRegion(*vm, memory_mb * kMiB / kPageSize);
  host.Find(*vm)->max_clones = static_cast<std::uint32_t>(clones);
  (void)host.Run(*vm);
  (void)daemon.SetupNet(*vm, 0xAA, MakeIpv4(10, 9, 0, 2));
  std::size_t free_before = host.FreePoolFrames();
  SimTime t0 = loop.Now();
  for (int i = 0; i < clones; ++i) {
    (void)host.CloneVm(*vm);
    loop.Run();  // kvmcloned second stage
  }
  PortResult r;
  r.clone_ms = (loop.Now() - t0).ToMillis() / clones;
  r.upfront_mb = static_cast<double>(free_before - host.FreePoolFrames()) * kPageSize / clones /
                 (1 << 20);
  return r;
}

}  // namespace
}  // namespace nephele

int main(int argc, char** argv) {
  using namespace nephele;
  BenchArgs args(argc, argv, {});
  (void)args;
  std::printf("# Platform-port comparison: Xen CLONEOP vs KVM_CLONE_VM (10 clones each)\n");
  SeriesTable table("Extension: clone cost per platform",
                    {"guest_mb", "xen_clone_ms", "xen_upfront_mb", "kvm_clone_ms",
                     "kvm_upfront_mb"});
  for (std::size_t mb : {4ul, 16ul, 64ul, 256ul}) {
    PortResult xen = MeasureXen(mb, 10);
    PortResult kvm = MeasureKvm(mb, 10);
    table.AddRow({static_cast<double>(mb), xen.clone_ms, xen.upfront_mb, kvm.clone_ms,
                  kvm.upfront_mb});
  }
  table.Print();
  std::printf("# KVM pays no private-page tax upfront (fork-COW covers rings too), but\n");
  std::printf("# defers the cost to first-write faults; Xen's second stage carries the\n");
  std::printf("# Xenstore/udev work that KVM's kvmcloned replaces with vhost re-registration.\n");
  return 0;
}
