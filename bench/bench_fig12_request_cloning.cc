// Figure 12 — Request cloning under heavy traffic: tail latency vs. the
// clone factor d.
//
// An open-loop Poisson stream (rate derived from a target utilization of
// the c-server dispatcher) drives the first-response-wins request-cloning
// policy of src/load: every request is duplicated to d instances acquired
// from the clone scheduler, the first response wins, losers are cancelled
// and their instances returned to the warm pool. The figure sweeps
// d in {1, 2, 4} across utilizations {0.30, 0.60, 0.85} and reports exact
// p99/p999 of the winning latencies (computed from the raw per-win log,
// not histogram buckets) — the request-cloning model (arXiv 2002.04416)
// predicts d=2 sits below d=1 at moderate utilization, and the gate pins
// that down as a sim metric.
//
// Usage: bench_fig12_request_cloning [ms_per_run]   (default 3000 simulated
// milliseconds per (d, utilization) cell). With --json=PATH the p99/p999
// figures land in a BenchJsonWriter document for the perf-regression gate.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_args.h"
#include "bench/bench_json.h"
#include "src/load/dispatch.h"
#include "src/load/load_gen.h"
#include "src/sched/scheduler.h"
#include "src/sim/series.h"
#include "src/toolstack/domain_config.h"

namespace nephele {
namespace {

constexpr unsigned kServers = 8;  // dispatcher max_concurrent

struct CellResult {
  double p99_ms = 0;
  double p999_ms = 0;
  double utilization = 0;  // busy server-time over capacity, measured
  std::uint64_t wins = 0;
};

std::int64_t Quantile(std::vector<std::int64_t>& values, double q) {
  if (values.empty()) {
    return 0;
  }
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  rank = rank == 0 ? 0 : rank - 1;
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(rank), values.end());
  return values[rank];
}

CellResult RunCell(unsigned clone_factor, double target_util, long run_ms) {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 1024 * 1024;
  cfg.sched.warm_pool_capacity = 16;
  cfg.sched.max_queue_depth = 64;
  cfg.load.clone_factor = clone_factor;
  cfg.load.max_concurrent = kServers;
  cfg.load.seed = 12;
  // Heavy requests (E[S] ~ 4.5 ms): every duplicate pays one warm grant
  // (~ms of control-plane latency), so cloning only pays off when service
  // time dominates the grant — the regime the figure is about.
  cfg.load.service_pages = 2048;
  cfg.load.service_p9_rpcs = 100;
  cfg.load.service_net_packets = 50;
  // Price the arrival rate off the cost model: lambda = util * c / E[S].
  // Cloning with eager cancellation is capacity-neutral (each request
  // consumes ~E[S] of total server time regardless of d), so the target
  // utilization carries across the d sweep.
  const double mean_service_s =
      RequestCloneDispatcher::MeanServiceTime(cfg.load, cfg.costs).ToSeconds();
  cfg.load.arrival.rate_rps = target_util * kServers / mean_service_s;

  NepheleSystem sys(cfg);
  CloneScheduler sched(sys);
  RequestCloneDispatcher dispatcher(sys, sched);
  LoadGenerator generator(sys);
  DomainConfig dcfg;
  dcfg.name = "fig12-parent";
  dcfg.memory_mb = 4;
  dcfg.max_clones = 512;
  dcfg.with_vif = true;
  auto parent = sys.toolstack().CreateDomain(dcfg);
  if (!parent.ok()) {
    return {};
  }
  sys.Settle();
  dispatcher.SetParent(*parent);

  std::vector<std::int64_t> latencies;
  dispatcher.RecordLatenciesTo(&latencies);
  generator.Start(SimDuration::Millis(run_ms),
                  [&dispatcher](const LoadRequest& r) { dispatcher.Submit(r); });
  sys.Settle();
  const double window_s = static_cast<double>(run_ms) / 1e3;

  // Drop the cold-start transient: the first clones cost simulated
  // milliseconds, which is not what the steady-state quantiles are about.
  const std::size_t warmup = std::min<std::size_t>(200, latencies.size());
  latencies.erase(latencies.begin(), latencies.begin() + static_cast<std::ptrdiff_t>(warmup));

  CellResult cell;
  cell.wins = dispatcher.wins();
  cell.p99_ms = static_cast<double>(Quantile(latencies, 0.99)) / 1e6;
  cell.p999_ms = static_cast<double>(Quantile(latencies, 0.999)) / 1e6;
  // Measured utilization over the arrival window: total service time burned
  // on servers (cancellation is eager, so ~E[S] per served request
  // regardless of d) over c * window. Tracks the target unless the run
  // rejects or backlogs past the window.
  cell.utilization = static_cast<double>(cell.wins) * mean_service_s /
                     (static_cast<double>(kServers) * window_s);
  return cell;
}

}  // namespace
}  // namespace nephele

int main(int argc, char** argv) {
  using namespace nephele;
  BenchArgs args(argc, argv, {{"ms_per_run", 3000, "simulated milliseconds per (d, util) cell"}});
  const long run_ms = args.Positional("ms_per_run");
  auto wall_start = std::chrono::steady_clock::now();

  const unsigned kFactors[] = {1, 2, 4};
  const double kUtils[] = {0.30, 0.60, 0.85};

  SeriesTable table(
      "Figure 12: winning-latency tails vs clone factor d (first-response-wins)",
      {"util", "d", "p99_ms", "p999_ms", "measured_util"});
  CellResult cells[3][3];
  for (int u = 0; u < 3; ++u) {
    for (int f = 0; f < 3; ++f) {
      cells[u][f] = RunCell(kFactors[f], kUtils[u], run_ms);
      table.AddRow({kUtils[u], static_cast<double>(kFactors[f]), cells[u][f].p99_ms,
                    cells[u][f].p999_ms, cells[u][f].utilization});
    }
  }
  table.Print();

  // The headline row is moderate utilization (0.30): cloning pays for the
  // extra warm grants with the min-of-d service tail. The higher-util rows
  // show the flip side — past the grant pipeline's capacity the duplicate
  // churn queues and cloning hurts, which is the model's own caveat.
  PrintSummary("p99 d=1, util 0.30", cells[0][0].p99_ms, "ms");
  PrintSummary("p99 d=2, util 0.30", cells[0][1].p99_ms, "ms");
  PrintSummary("p99 d=4, util 0.30", cells[0][2].p99_ms, "ms");
  PrintSummary("p999 d=1, util 0.30", cells[0][0].p999_ms, "ms");
  PrintSummary("p999 d=2, util 0.30", cells[0][1].p999_ms, "ms");
  std::printf("# request cloning %s: p99(d=2) %s p99(d=1) at util 0.30\n",
              cells[0][1].p99_ms < cells[0][0].p99_ms ? "wins" : "LOSES",
              cells[0][1].p99_ms < cells[0][0].p99_ms ? "<" : ">=");

  if (!args.json_path().empty()) {
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
    BenchJsonWriter json("fig12");
    const char* unames[] = {"u30", "u60", "u85"};
    for (int u = 0; u < 3; ++u) {
      for (int f = 0; f < 3; ++f) {
        const std::string stem =
            std::string("d") + std::to_string(kFactors[f]) + "_" + unames[u];
        json.Add("p99_ms_" + stem, cells[u][f].p99_ms, "ms", MetricDir::kLowerIsBetter,
                 MetricKind::kSim);
        json.Add("p999_ms_" + stem, cells[u][f].p999_ms, "ms", MetricDir::kLowerIsBetter,
                 MetricKind::kSim);
      }
    }
    // The headline claim as a gate metric: the d=2/d=1 p99 ratio at
    // moderate utilization must stay below 1 (and not regress upward).
    json.Add("p99_ratio_d2_d1_u30",
             cells[0][0].p99_ms > 0 ? cells[0][1].p99_ms / cells[0][0].p99_ms : 1.0, "ratio",
             MetricDir::kLowerIsBetter, MetricKind::kSim);
    json.Add("host_wall_ms", wall_ms, "ms", MetricDir::kLowerIsBetter, MetricKind::kWall);
    return json.WriteFile(args.json_path()) ? 0 : 1;
  }
  return 0;
}
