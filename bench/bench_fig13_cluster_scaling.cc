// Figure 13 (beyond the paper) — cluster-scale clone placement.
//
// The paper's evaluation stops at one host; Sec. 8 names multi-host cloning
// as the open extension. This bench drives the ClusterFabric at that scale:
// a 4-host fabric, one parent image replicated to every peer, and >=1024
// instances acquired through the cluster scheduler's placement policy in
// waves, with a release/re-acquire pass exercising the cross-host warm
// pools and a mid-migration link-fault demo proving clean rollback (frame
// conservation checked on both ends).
//
// The whole scenario is a seeded discrete-event run, so its merged cluster
// export — every host's metrics plus the fabric's own — must be
// byte-identical across reruns AND across clone worker counts. The bench
// runs the scenario three times (workers 1, 1 again, 4) and fails hard on
// any digest mismatch before emitting gate metrics.
//
// Usage: bench_fig13_cluster_scaling [instances]   (default 1024). With
// --json=PATH the figures land in a BenchJsonWriter document for the
// perf-regression gate (scripts/bench_gate.sh).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_args.h"
#include "bench/bench_json.h"
#include "src/core/fabric.h"
#include "src/hypervisor/invariants.h"
#include "src/sched/cluster_scheduler.h"
#include "src/sim/series.h"

namespace nephele {
namespace {

constexpr std::size_t kHosts = 4;
constexpr std::size_t kWave = 128;

struct ScenarioResult {
  std::string digest;           // merged cluster metrics export
  double sim_ms = 0;            // virtual time for the whole scenario
  std::size_t granted = 0;      // children granted across all waves
  std::size_t warm_granted = 0; // re-acquire wave grants
  std::vector<std::size_t> per_host;
  std::uint64_t warm_placements = 0;
  std::uint64_t link_tx_bytes = 0;
  bool rollback_ok = false;     // link-fault migration rolled back cleanly
  bool invariants_ok = false;   // every host clean at the end
};

ScenarioResult RunScenario(std::size_t instances, unsigned clone_workers) {
  ScenarioResult out;
  ClusterConfig cfg;
  cfg.hosts = kHosts;
  cfg.placement = PlacementPolicy::kSpread;
  cfg.host.hypervisor.pool_frames = 256 * 1024;  // 1 GiB pool per host
  cfg.host.clone_worker_threads = clone_workers;
  cfg.host.sched.max_queue_depth = 256;
  cfg.host.sched.warm_pool_capacity = 64;
  ClusterFabric fabric(cfg);
  ClusterScheduler sched(fabric);

  DomainConfig parent_cfg;
  parent_cfg.name = "fig13-fn";
  parent_cfg.memory_mb = 4;
  parent_cfg.max_clones = 1024;
  auto parent = fabric.host(0).toolstack().CreateDomain(parent_cfg);
  if (!parent.ok()) {
    std::fprintf(stderr, "parent boot failed: %s\n", parent.status().ToString().c_str());
    std::exit(1);
  }
  fabric.Settle();
  auto family = sched.RegisterParent(0, *parent);
  if (!family.ok()) {
    std::fprintf(stderr, "RegisterParent failed: %s\n", family.status().ToString().c_str());
    std::exit(1);
  }
  fabric.Settle();

  // --- Placement waves: `instances` children, kWave at a time -------------
  std::vector<ClusterGrant> grants;
  grants.reserve(instances);
  for (std::size_t done = 0; done < instances; done += kWave) {
    const std::size_t want = std::min(kWave, instances - done);
    (void)sched.Acquire(*family, static_cast<unsigned>(want),
                        [&out, &grants](Result<ClusterGrant> r) {
                          if (r.ok()) {
                            ++out.granted;
                            grants.push_back(*r);
                          }
                        });
    fabric.Settle();
  }

  // --- Warm pass: release one wave, re-acquire it from the parked pool ----
  const std::size_t recycle = std::min<std::size_t>(kWave, grants.size());
  for (std::size_t i = 0; i < recycle; ++i) {
    (void)sched.Release(grants[grants.size() - 1 - i]);
  }
  fabric.Settle();
  (void)sched.Acquire(*family, static_cast<unsigned>(recycle),
                      [&out](Result<ClusterGrant> r) { out.warm_granted += r.ok() ? 1 : 0; });
  fabric.Settle();

  // --- Mid-migration link fault: the source must roll back cleanly --------
  DomainConfig mover_cfg;
  mover_cfg.name = "fig13-mover";
  mover_cfg.memory_mb = 4;
  mover_cfg.max_clones = 0;
  auto mover = fabric.host(0).toolstack().CreateDomain(mover_cfg);
  if (mover.ok()) {
    fabric.Settle();
    (void)fabric.fault_injector().Arm("fabric/link", FaultSpec::NthHit(1));
    auto failed = fabric.Migrate(*mover, 0, 3);
    const Domain* back = fabric.host(0).hypervisor().FindDomain(*mover);
    out.rollback_ok = !failed.ok() && back != nullptr &&
                      back->state == DomainState::kRunning &&
                      CheckHypervisorInvariants(fabric.host(0).hypervisor()).empty() &&
                      CheckHypervisorInvariants(fabric.host(3).hypervisor()).empty();
    fabric.fault_injector().DisarmAll();
    auto moved = fabric.Migrate(*mover, 0, 3);
    out.rollback_ok = out.rollback_ok && moved.ok();
    fabric.Settle();
  }

  out.invariants_ok = true;
  for (std::size_t i = 0; i < fabric.num_hosts(); ++i) {
    out.per_host.push_back(sched.active_on(i));
    out.invariants_ok =
        out.invariants_ok && CheckHypervisorInvariants(fabric.host(i).hypervisor()).empty();
  }
  out.warm_placements = fabric.metrics().CounterValue("cluster/warm_placements");
  out.link_tx_bytes = fabric.metrics().CounterValue("fabric/link_tx_bytes");
  out.sim_ms = fabric.Now().ToSeconds() * 1e3;
  out.digest = fabric.ExportClusterMetricsJson();
  return out;
}

}  // namespace
}  // namespace nephele

int main(int argc, char** argv) {
  using namespace nephele;
  BenchArgs args(argc, argv, {{"instances", 1024, "children to place across the fabric"}});
  const std::size_t instances = static_cast<std::size_t>(args.Positional("instances"));
  auto wall_start = std::chrono::steady_clock::now();

  ScenarioResult run1 = RunScenario(instances, /*clone_workers=*/1);
  ScenarioResult rerun = RunScenario(instances, /*clone_workers=*/1);
  ScenarioResult run4 = RunScenario(instances, /*clone_workers=*/4);

  const bool rerun_identical = run1.digest == rerun.digest;
  const bool workers_identical = run1.digest == run4.digest;

  SeriesTable table("Figure 13: cluster-wide clone placement (4 hosts, spread)",
                    {"host", "active_children"});
  for (std::size_t i = 0; i < run1.per_host.size(); ++i) {
    table.AddRow({static_cast<double>(i), static_cast<double>(run1.per_host[i])});
  }
  table.Print();

  PrintSummary("instances requested", static_cast<double>(instances));
  PrintSummary("instances granted", static_cast<double>(run1.granted));
  PrintSummary("warm re-acquires granted", static_cast<double>(run1.warm_granted));
  PrintSummary("warm placements (cluster)", static_cast<double>(run1.warm_placements));
  PrintSummary("fabric bytes on the wire", static_cast<double>(run1.link_tx_bytes), "B");
  PrintSummary("virtual time for the scenario", run1.sim_ms, "ms");
  PrintSummary("link-fault rollback clean", run1.rollback_ok ? 1.0 : 0.0);
  PrintSummary("all hosts invariant-clean", run1.invariants_ok ? 1.0 : 0.0);
  PrintSummary("digest identical across reruns", rerun_identical ? 1.0 : 0.0);
  PrintSummary("digest identical, workers 1 vs 4", workers_identical ? 1.0 : 0.0);

  if (!rerun_identical || !workers_identical || !run1.rollback_ok || !run1.invariants_ok) {
    std::fprintf(stderr,
                 "FAIL: rerun_identical=%d workers_identical=%d rollback_ok=%d "
                 "invariants_ok=%d\n",
                 rerun_identical, workers_identical, run1.rollback_ok, run1.invariants_ok);
    return 1;
  }
  if (run1.granted < instances) {
    std::fprintf(stderr, "FAIL: only %zu of %zu instances granted\n", run1.granted, instances);
    return 1;
  }

  if (!args.json_path().empty()) {
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
    BenchJsonWriter json("fig13");
    json.Add("instances_granted", static_cast<double>(run1.granted), "count",
             MetricDir::kHigherIsBetter, MetricKind::kSim);
    json.Add("warm_regrants", static_cast<double>(run1.warm_granted), "count",
             MetricDir::kHigherIsBetter, MetricKind::kSim);
    json.Add("warm_placements", static_cast<double>(run1.warm_placements), "count",
             MetricDir::kHigherIsBetter, MetricKind::kSim);
    json.Add("fabric_tx_bytes", static_cast<double>(run1.link_tx_bytes), "B",
             MetricDir::kLowerIsBetter, MetricKind::kSim);
    json.Add("scenario_sim_ms", run1.sim_ms, "ms", MetricDir::kLowerIsBetter, MetricKind::kSim);
    json.Add("host_wall_ms", wall_ms, "ms", MetricDir::kLowerIsBetter, MetricKind::kWall);
    return json.WriteFile(args.json_path()) ? 0 : 1;
  }
  return 0;
}
