// Figure 8 — Redis database saving times vs. number of keys.
//
// Sec. 7.1 methodology: Redis runs (a) as a process inside an Alpine Linux
// VM and (b) as a Unikraft guest, both saving the in-memory database to a
// 9pfs share backed by a Dom0 ramdisk. A first BGSAVE right after boot marks
// the address space COW; the figure reports the SECOND fork/clone duration
// (after mass insertion) and the full database save time, plus the flat
// userspace-operations cost of I/O cloning (toolstack introduction + 9pfs
// fid cloning; network devices are skipped — the clones need no vif).
//
// Usage: bench_fig08_redis_save

#include <cstdio>

#include "bench/bench_args.h"
#include "src/apps/redis_app.h"
#include "src/baseline/linux_process.h"
#include "src/guest/guest_manager.h"
#include "src/sim/series.h"

namespace nephele {
namespace {

constexpr std::size_t kBytesPerKey = 100;

struct UnikraftSample {
  double clone_ms = 0;
  double save_ms = 0;
  double userspace_ms = 0;
};

UnikraftSample MeasureUnikraft(std::size_t keys) {
  UnikraftSample out;
  SystemConfig scfg;
  scfg.hypervisor.pool_frames = 256 * 1024;
  NepheleSystem system(scfg);
  GuestManager guests(system);
  (void)system.devices().hostfs().CreateFile("/srv/guest-root/redis.conf");

  DomainConfig cfg;
  cfg.name = "redis";
  cfg.memory_mb = 256;
  cfg.max_clones = 16;
  cfg.with_vif = false;  // I/O cloning covers only the devices clones need
  cfg.with_p9fs = true;
  auto dom = guests.Launch(cfg, std::make_unique<RedisApp>(RedisConfig{}));
  if (!dom.ok()) {
    std::fprintf(stderr, "redis launch failed: %s\n", dom.status().ToString().c_str());
    return out;
  }
  system.Settle();
  auto* redis = dynamic_cast<RedisApp*>(guests.AppOf(*dom));
  GuestContext* ctx = guests.ContextOf(*dom);

  // First save right after initialization: marks memory COW (not reported).
  bool saved = false;
  redis->set_on_saved([&](DomId) { saved = true; });
  (void)redis->Save(*ctx);
  system.Settle();

  // Mass insertion, then the measured save.
  (void)redis->MassInsert(*ctx, keys);
  saved = false;
  SimTime save_start = system.Now();
  (void)redis->Save(*ctx);
  system.Settle();
  // The fork duration is the parent's blocked time: CLONEOP call until the
  // hypervisor unpauses it after second-stage completion.
  out.clone_ms = (system.clone_engine().stats().last_parent_resume - save_start).ToMillis();
  out.save_ms = (system.Now() - save_start).ToMillis();
  out.userspace_ms = system.xencloned().stats().last_second_stage.ToMillis();
  return out;
}

struct ProcessSample {
  double fork_ms = 0;
  double save_ms = 0;
};

// Redis as a process inside a Linux VM, dump written over 9pfs.
ProcessSample MeasureVmProcess(std::size_t keys) {
  ProcessSample out;
  EventLoop loop;
  const CostModel& costs = DefaultCostModel();
  LinuxProcessModel model(loop, costs);
  HostFs fs;
  (void)fs.CreateFile("/export/dump.rdb");
  P9BackendRegistry p9(loop, costs, fs);

  std::size_t resident_mb = 16 + keys * kBytesPerKey / kMiB;  // baseline + dataset
  auto pid = model.Spawn(resident_mb);
  // First fork right after init (COW marking; not reported).
  auto warm = model.Fork(*pid);
  (void)model.Exit(*warm);

  SimTime t0 = loop.Now();
  auto saver = model.Fork(*pid);
  out.fork_ms = (loop.Now() - t0).ToMillis();

  // The child serializes and writes the dump through 9pfs.
  auto proc = p9.LaunchForDomain(7, "/export");
  std::size_t bytes = keys * kBytesPerKey;
  loop.AdvanceBy(costs.redis_serialize_key * static_cast<double>(keys));
  auto root = (*proc)->Attach(7);
  auto fid = (*proc)->Create(7, *root, "dump.rdb");
  (void)(*proc)->Write(7, *fid, 0, std::vector<std::uint8_t>(bytes, 0xAB));
  (void)(*proc)->Clunk(7, *fid);
  (void)model.Exit(*saver);
  out.save_ms = (loop.Now() - t0).ToMillis();
  return out;
}

}  // namespace
}  // namespace nephele

int main(int argc, char** argv) {
  using namespace nephele;
  BenchArgs args(argc, argv, {});
  (void)args;
  SeriesTable table("Figure 8: Redis database saving times vs #keys (ms, log-log)",
                    {"keys", "vm_process_fork", "vm_process_save", "unikraft_clone",
                     "unikraft_save", "userspace_ops"});
  for (std::size_t keys : {0ul, 1ul, 10ul, 100ul, 1000ul, 10000ul, 100000ul, 1000000ul}) {
    ProcessSample p = MeasureVmProcess(keys);
    UnikraftSample u = MeasureUnikraft(keys);
    table.AddRow({static_cast<double>(keys), p.fork_ms, p.save_ms, u.clone_ms, u.save_ms,
                  u.userspace_ms});
  }
  table.Print();

  auto keys_col = table.Column(0);
  auto psave = table.Column(2);
  auto usave = table.Column(4);
  PrintSummary("save-time ratio unikraft/process at 0 keys", usave.front() / psave.front(),
               "x");
  PrintSummary("save-time ratio unikraft/process at 1M keys", usave.back() / psave.back(),
               "x");
  return 0;
}
