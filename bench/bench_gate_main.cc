// bench_gate: compares BENCH_*.json documents (bench --json=PATH output)
// against scripts/bench_baseline.json and exits non-zero on regression or
// schema drift. scripts/bench_gate.sh is the driver that runs the benches
// and invokes this binary; ctest runs it in --sim-only mode.
//
//   bench_gate --baseline=PATH --current=PATH [--current=PATH ...]
//              [--sim-only] [--require-all]
//              [--wall-tolerance=F] [--sim-tolerance=F]
//   bench_gate --record=PATH --current=PATH [...]   # (re)write the baseline

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_gate.h"
#include "bench/bench_json.h"
#include "src/obs/json.h"

namespace nephele {
namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return false;
  }
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return true;
}

bool LoadJson(const std::string& path, JsonValue* out) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "bench_gate: cannot read %s\n", path.c_str());
    return false;
  }
  std::string error;
  if (!ParseJson(text, out, &error)) {
    std::fprintf(stderr, "bench_gate: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

int Run(int argc, char** argv) {
  std::string baseline_path;
  std::string record_path;
  std::vector<std::string> current_paths;
  GateOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value();
    } else if (arg.rfind("--record=", 0) == 0) {
      record_path = value();
    } else if (arg.rfind("--current=", 0) == 0) {
      current_paths.push_back(value());
    } else if (arg == "--sim-only") {
      opt.sim_only = true;
    } else if (arg == "--require-all") {
      opt.require_all = true;
    } else if (arg.rfind("--wall-tolerance=", 0) == 0) {
      opt.wall_tolerance = std::atof(value().c_str());
    } else if (arg.rfind("--sim-tolerance=", 0) == 0) {
      opt.sim_tolerance = std::atof(value().c_str());
    } else {
      std::fprintf(stderr, "bench_gate: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (current_paths.empty() || (baseline_path.empty() == record_path.empty())) {
    std::fprintf(stderr,
                 "usage: bench_gate (--baseline=PATH | --record=PATH) --current=PATH [...]\n"
                 "       [--sim-only] [--require-all] [--wall-tolerance=F] [--sim-tolerance=F]\n");
    return 2;
  }

  std::vector<JsonValue> currents(current_paths.size());
  for (std::size_t i = 0; i < current_paths.size(); ++i) {
    if (!LoadJson(current_paths[i], &currents[i])) {
      return 1;
    }
  }

  if (!record_path.empty()) {
    if (BenchJsonWriter::HandicapFromEnv() != 1.0) {
      std::fprintf(stderr, "bench_gate: refusing to record a baseline under "
                           "NEPHELE_BENCH_HANDICAP\n");
      return 2;
    }
    std::string doc = RecordBaseline(currents);
    std::FILE* f = std::fopen(record_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_gate: cannot write %s\n", record_path.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("bench_gate: recorded %zu bench(es) into %s\n", currents.size(),
                record_path.c_str());
    return 0;
  }

  JsonValue baseline;
  if (!LoadJson(baseline_path, &baseline)) {
    return 1;
  }
  GateReport report = GateCompare(baseline, currents, opt);
  report.Print(stdout);
  return report.ok() ? 0 : 1;
}

}  // namespace
}  // namespace nephele

int main(int argc, char** argv) { return nephele::Run(argc, argv); }
