// Figure 10 — OpenFaaS memory consumption: containers vs. unikernels.
//
// Sec. 7.3 setup: a hello-world Python function under an RPS autoscaler.
// The container series is the vanilla Kubernetes deployment model; the
// unikernel series runs KubeKraft-style Unikraft+Python guests on the REAL
// cloning pipeline (first instance boots, every further instance is a clone
// of it). Reports occupied memory over time and the instance-readiness
// times (the paper's dashed vertical lines: ~33/42/56 s for containers vs
// ~3/14/25 s for unikernels).
//
// Usage: bench_fig10_faas_memory [seconds]   (default 200)

#include <cstdio>
#include <cstdlib>

#include "bench/bench_args.h"
#include "src/faas/gateway.h"
#include "src/sim/series.h"

namespace nephele {
namespace {

constexpr double kDemandRps = 65.0;  // 10 RPS threshold -> scales to ~6 instances

GatewayRunResult RunContainers(int seconds) {
  EventLoop loop;
  ContainerBackend backend(loop, ContainerBackend::Config{});
  OpenFaasGateway gateway(loop, backend, GatewayConfig{});
  return gateway.Run(SimDuration::Seconds(seconds), [](double) { return kDemandRps; });
}

GatewayRunResult RunUnikernels(int seconds) {
  SystemConfig scfg;
  scfg.hypervisor.pool_frames = 1024 * 1024;  // 4 GiB guest pool
  static NepheleSystem* system = new NepheleSystem(scfg);
  GuestManager* guests = new GuestManager(*system);
  (void)system->devices().hostfs().CreateFile("/srv/guest-root/python3");
  UnikernelBackend backend(*guests, UnikernelBackend::Config{});
  OpenFaasGateway gateway(system->loop(), backend, GatewayConfig{});
  return gateway.Run(SimDuration::Seconds(seconds), [](double) { return kDemandRps; });
}

}  // namespace
}  // namespace nephele

int main(int argc, char** argv) {
  using namespace nephele;
  BenchArgs args(argc, argv, {{"seconds", 200, "simulated seconds per run"}});
  int seconds = static_cast<int>(args.Positional("seconds"));

  GatewayRunResult containers = RunContainers(seconds);
  GatewayRunResult unikernels = RunUnikernels(seconds);

  SeriesTable table("Figure 10: OpenFaaS memory consumption over time (MB)",
                    {"seconds", "containers_mb", "containers_instances", "unikernels_mb",
                     "unikernels_instances"});
  std::size_t rows = std::min(containers.series.size(), unikernels.series.size());
  for (std::size_t i = 0; i < rows; i += 5) {
    table.AddRow({containers.series[i].t_seconds, containers.series[i].memory_mb,
                  static_cast<double>(containers.series[i].instances_ready),
                  unikernels.series[i].memory_mb,
                  static_cast<double>(unikernels.series[i].instances_ready)});
  }
  table.Print();

  auto print_readiness = [](const char* name, const std::vector<double>& times) {
    std::printf("# %s instance-ready times (s):", name);
    for (double t : times) {
      std::printf(" %.0f", t);
    }
    std::printf("\n");
  };
  print_readiness("containers", containers.readiness_times);
  print_readiness("unikernels", unikernels.readiness_times);

  if (!containers.readiness_times.empty() && !unikernels.readiness_times.empty()) {
    PrintSummary("first-instance readiness advantage",
                 containers.readiness_times[0] - unikernels.readiness_times[0], "s");
  }
  double cont_final = containers.series[rows - 1].memory_mb;
  double uni_final = unikernels.series[rows - 1].memory_mb;
  std::size_t cont_n = containers.series[rows - 1].instances_total;
  std::size_t uni_n = unikernels.series[rows - 1].instances_total;
  PrintSummary("final container memory", cont_final, "MB");
  PrintSummary("final unikernel memory", uni_final, "MB");
  if (cont_n > 1 && uni_n > 1) {
    PrintSummary("container MB per extra instance",
                 (cont_final - 90.0) / static_cast<double>(cont_n - 1), "MB");
    PrintSummary("unikernel MB per extra instance",
                 (uni_final - 85.0) / static_cast<double>(uni_n - 1), "MB");
  }
  return 0;
}
