// BenchJsonWriter: the machine-readable half of a bench binary — what
// `--json=PATH` emits and what the perf-regression gate (bench_gate.h,
// scripts/bench_gate.sh) consumes.
//
// Each metric carries three facts the gate needs to judge it:
//
//   unit        display only ("ms", "ops_per_sec", "x", "count")
//   direction   lower | higher — which way regression points
//   kind        sim  — derived from simulated time or deterministic counts;
//                      byte-identical across reruns, gated with a tight
//                      tolerance
//               wall — host wall-clock; noisy, gated with a loose tolerance
//                      and skipped entirely under --sim-only
//
// Values are serialized as fixed-point micro-units (llround(v * 1e6)) so
// documents are byte-deterministic: no printf("%g") locale or shortest-
// round-trip ambiguity. Metric names are emitted sorted.
//
// NEPHELE_BENCH_HANDICAP (a positive float, default 1) synthetically
// worsens every WALL metric at Add() time — lower-is-better values are
// multiplied, higher-is-better divided. It exists for one purpose: the
// gate's self-test runs a bench under a 4x handicap and asserts the gate
// FAILS, proving the comparison actually bites. Sim metrics are never
// handicapped (they must stay byte-identical).

#ifndef BENCH_BENCH_JSON_H_
#define BENCH_BENCH_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>

namespace nephele {

enum class MetricKind { kSim, kWall };
enum class MetricDir { kLowerIsBetter, kHigherIsBetter };

class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name)
      : bench_(std::move(bench_name)), handicap_(HandicapFromEnv()) {}

  double handicap() const { return handicap_; }

  void Add(const std::string& name, double value, const std::string& unit, MetricDir dir,
           MetricKind kind) {
    double v = value;
    if (kind == MetricKind::kWall && handicap_ != 1.0) {
      v = dir == MetricDir::kLowerIsBetter ? v * handicap_ : v / handicap_;
    }
    metrics_[name] = Metric{v, unit, dir, kind};
  }

  std::string ToJson() const {
    std::string out = "{\"bench\":\"" + bench_ + "\",";
    out += "\"handicap_micros\":" + std::to_string(ToMicros(handicap_)) + ",";
    out += "\"metrics\":{";
    bool first = true;
    for (const auto& [name, m] : metrics_) {  // std::map: sorted names
      if (!first) {
        out += ",";
      }
      first = false;
      out += "\"" + name + "\":{";
      out += std::string("\"direction\":\"") +
             (m.dir == MetricDir::kLowerIsBetter ? "lower" : "higher") + "\",";
      out += std::string("\"kind\":\"") + (m.kind == MetricKind::kSim ? "sim" : "wall") + "\",";
      out += "\"unit\":\"" + m.unit + "\",";
      out += "\"value_micros\":" + std::to_string(ToMicros(m.value)) + "}";
    }
    out += "},\"schema_version\":1}\n";
    return out;
  }

  // False (with an error message on stderr) when PATH cannot be written.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::string doc = ToJson();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return true;
  }

  static double HandicapFromEnv() {
    const char* env = std::getenv("NEPHELE_BENCH_HANDICAP");
    if (env == nullptr || *env == '\0') {
      return 1.0;
    }
    double h = std::strtod(env, nullptr);
    return h > 0.0 ? h : 1.0;
  }

  static std::int64_t ToMicros(double v) {
    return static_cast<std::int64_t>(std::llround(v * 1e6));
  }

 private:
  struct Metric {
    double value = 0.0;
    std::string unit;
    MetricDir dir = MetricDir::kLowerIsBetter;
    MetricKind kind = MetricKind::kWall;
  };

  std::string bench_;
  double handicap_;
  std::map<std::string, Metric> metrics_;
};

}  // namespace nephele

#endif  // BENCH_BENCH_JSON_H_
