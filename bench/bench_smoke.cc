// Smoke check for the observability layer: runs a tiny clone scenario twice
// in fresh systems and validates the exported metrics JSON — well-formed,
// byte-identical across runs (the determinism contract), and carrying the
// metric names the figure benches consume. Registered as a ctest target so a
// rename or nondeterministic export fails CI, not a bench run.
//
// Usage: bench_smoke   (exit 0 on success, 1 with a message on failure)

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/system.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace nephele {
namespace {

int g_failures = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++g_failures;
  }
}

std::string RunScenario() {
  SystemConfig cfg;
  cfg.hypervisor.pool_frames = 256 * 1024;
  NepheleSystem system(cfg);

  DomainConfig dcfg;
  dcfg.name = "smoke-parent";
  dcfg.memory_mb = 4;
  dcfg.max_clones = 8;
  auto parent = system.toolstack().CreateDomain(dcfg);
  if (!parent.ok()) {
    std::fprintf(stderr, "FAIL: parent boot: %s\n", parent.status().ToString().c_str());
    ++g_failures;
    return {};
  }
  const Domain* d = system.hypervisor().FindDomain(*parent);
  auto children = system.clone_engine().Clone({*parent, *parent,
                                             d->p2m[d->start_info_gfn].mfn, 2});
  Check(children.ok(), "clone of smoke parent");
  system.Settle();
  return system.metrics().ExportJson();
}

int Run() {
  std::string first = RunScenario();
  std::string second = RunScenario();

  std::string error;
  if (!JsonIsWellFormed(first, &error)) {
    std::fprintf(stderr, "FAIL: metrics JSON malformed: %s\n", error.c_str());
    ++g_failures;
  }
  Check(first == second, "ExportJson byte-identical across two identical runs");

  // The names the figure benches read; a silent rename must fail here.
  const std::vector<std::string_view> expected = {
      "\"clone/clones_total\"",         "\"clone/stage1/pages_shared\"",
      "\"clone/stage1/duration_ns\"",   "\"clone/stage2/duration_ns\"",
      "\"clone/fork_to_resume/duration_ns\"",
      "\"xencloned/clones_completed\"", "\"xenstore/requests/total\"",
      "\"xenstore/log/rotations\"",     "\"toolstack/boot/duration_ns\"",
      "\"toolstack/domains_booted\"",   "\"hypervisor/frames/shared\"",
      "\"hypervisor/hypercalls\"",
  };
  for (std::string_view key : expected) {
    if (first.find(key) == std::string::npos) {
      std::fprintf(stderr, "FAIL: metrics JSON missing key %s\n",
                   std::string(key).c_str());
      ++g_failures;
    }
  }

  if (g_failures == 0) {
    std::printf("bench_smoke: ok (%zu bytes of metrics JSON)\n", first.size());
  }
  return g_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace nephele

int main() { return nephele::Run(); }
