file(REMOVE_RECURSE
  "CMakeFiles/hypervisor_test.dir/hypervisor_test.cc.o"
  "CMakeFiles/hypervisor_test.dir/hypervisor_test.cc.o.d"
  "hypervisor_test"
  "hypervisor_test.pdb"
  "hypervisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypervisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
