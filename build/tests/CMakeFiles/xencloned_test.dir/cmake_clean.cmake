file(REMOVE_RECURSE
  "CMakeFiles/xencloned_test.dir/xencloned_test.cc.o"
  "CMakeFiles/xencloned_test.dir/xencloned_test.cc.o.d"
  "xencloned_test"
  "xencloned_test.pdb"
  "xencloned_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xencloned_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
