# Empty compiler generated dependencies file for xencloned_test.
# This may be replaced when dependencies are built.
