file(REMOVE_RECURSE
  "CMakeFiles/toolstack_test.dir/toolstack_test.cc.o"
  "CMakeFiles/toolstack_test.dir/toolstack_test.cc.o.d"
  "toolstack_test"
  "toolstack_test.pdb"
  "toolstack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolstack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
