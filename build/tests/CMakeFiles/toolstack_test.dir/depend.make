# Empty dependencies file for toolstack_test.
# This may be replaced when dependencies are built.
