# Empty dependencies file for forkjoin_test.
# This may be replaced when dependencies are built.
