file(REMOVE_RECURSE
  "CMakeFiles/forkjoin_test.dir/forkjoin_test.cc.o"
  "CMakeFiles/forkjoin_test.dir/forkjoin_test.cc.o.d"
  "forkjoin_test"
  "forkjoin_test.pdb"
  "forkjoin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forkjoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
