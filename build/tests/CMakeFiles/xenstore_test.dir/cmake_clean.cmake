file(REMOVE_RECURSE
  "CMakeFiles/xenstore_test.dir/xenstore_test.cc.o"
  "CMakeFiles/xenstore_test.dir/xenstore_test.cc.o.d"
  "xenstore_test"
  "xenstore_test.pdb"
  "xenstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xenstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
