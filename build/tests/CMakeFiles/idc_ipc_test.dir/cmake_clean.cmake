file(REMOVE_RECURSE
  "CMakeFiles/idc_ipc_test.dir/idc_ipc_test.cc.o"
  "CMakeFiles/idc_ipc_test.dir/idc_ipc_test.cc.o.d"
  "idc_ipc_test"
  "idc_ipc_test.pdb"
  "idc_ipc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idc_ipc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
