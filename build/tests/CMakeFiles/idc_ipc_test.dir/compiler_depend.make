# Empty compiler generated dependencies file for idc_ipc_test.
# This may be replaced when dependencies are built.
