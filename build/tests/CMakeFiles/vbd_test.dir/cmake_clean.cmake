file(REMOVE_RECURSE
  "CMakeFiles/vbd_test.dir/vbd_test.cc.o"
  "CMakeFiles/vbd_test.dir/vbd_test.cc.o.d"
  "vbd_test"
  "vbd_test.pdb"
  "vbd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
