# Empty compiler generated dependencies file for vbd_test.
# This may be replaced when dependencies are built.
