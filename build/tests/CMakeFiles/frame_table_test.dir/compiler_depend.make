# Empty compiler generated dependencies file for frame_table_test.
# This may be replaced when dependencies are built.
