file(REMOVE_RECURSE
  "CMakeFiles/frame_table_test.dir/frame_table_test.cc.o"
  "CMakeFiles/frame_table_test.dir/frame_table_test.cc.o.d"
  "frame_table_test"
  "frame_table_test.pdb"
  "frame_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
