
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/net_test.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/faas/CMakeFiles/nephele_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzz/CMakeFiles/nephele_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/kvm/CMakeFiles/nephele_kvm.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/nephele_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/nephele_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/nephele_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nephele_core.dir/DependInfo.cmake"
  "/root/repo/build/src/toolstack/CMakeFiles/nephele_toolstack.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/nephele_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nephele_net.dir/DependInfo.cmake"
  "/root/repo/build/src/xenstore/CMakeFiles/nephele_xenstore.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/nephele_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nephele_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/nephele_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
