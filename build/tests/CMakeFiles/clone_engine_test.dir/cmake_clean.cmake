file(REMOVE_RECURSE
  "CMakeFiles/clone_engine_test.dir/clone_engine_test.cc.o"
  "CMakeFiles/clone_engine_test.dir/clone_engine_test.cc.o.d"
  "clone_engine_test"
  "clone_engine_test.pdb"
  "clone_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clone_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
