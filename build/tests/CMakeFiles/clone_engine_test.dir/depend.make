# Empty dependencies file for clone_engine_test.
# This may be replaced when dependencies are built.
