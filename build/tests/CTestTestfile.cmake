# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/frame_table_test[1]_include.cmake")
include("/root/repo/build/tests/hypervisor_test[1]_include.cmake")
include("/root/repo/build/tests/xenstore_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/devices_test[1]_include.cmake")
include("/root/repo/build/tests/toolstack_test[1]_include.cmake")
include("/root/repo/build/tests/clone_engine_test[1]_include.cmake")
include("/root/repo/build/tests/xencloned_test[1]_include.cmake")
include("/root/repo/build/tests/idc_ipc_test[1]_include.cmake")
include("/root/repo/build/tests/guest_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/faas_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/vbd_test[1]_include.cmake")
include("/root/repo/build/tests/mq_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/migration_test[1]_include.cmake")
include("/root/repo/build/tests/forkjoin_test[1]_include.cmake")
include("/root/repo/build/tests/kvm_test[1]_include.cmake")
include("/root/repo/build/tests/posix_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
