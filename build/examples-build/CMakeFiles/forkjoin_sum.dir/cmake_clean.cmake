file(REMOVE_RECURSE
  "../examples/forkjoin_sum"
  "../examples/forkjoin_sum.pdb"
  "CMakeFiles/forkjoin_sum.dir/forkjoin_sum.cpp.o"
  "CMakeFiles/forkjoin_sum.dir/forkjoin_sum.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forkjoin_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
