# Empty compiler generated dependencies file for forkjoin_sum.
# This may be replaced when dependencies are built.
