file(REMOVE_RECURSE
  "../examples/faas_autoscale"
  "../examples/faas_autoscale.pdb"
  "CMakeFiles/faas_autoscale.dir/faas_autoscale.cpp.o"
  "CMakeFiles/faas_autoscale.dir/faas_autoscale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faas_autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
