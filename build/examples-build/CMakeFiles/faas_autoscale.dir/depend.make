# Empty dependencies file for faas_autoscale.
# This may be replaced when dependencies are built.
