# Empty compiler generated dependencies file for xl_shell.
# This may be replaced when dependencies are built.
