file(REMOVE_RECURSE
  "../examples/xl_shell"
  "../examples/xl_shell.pdb"
  "CMakeFiles/xl_shell.dir/xl_shell.cpp.o"
  "CMakeFiles/xl_shell.dir/xl_shell.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xl_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
