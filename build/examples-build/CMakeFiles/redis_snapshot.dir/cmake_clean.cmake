file(REMOVE_RECURSE
  "../examples/redis_snapshot"
  "../examples/redis_snapshot.pdb"
  "CMakeFiles/redis_snapshot.dir/redis_snapshot.cpp.o"
  "CMakeFiles/redis_snapshot.dir/redis_snapshot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redis_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
