# Empty dependencies file for nginx_workers.
# This may be replaced when dependencies are built.
