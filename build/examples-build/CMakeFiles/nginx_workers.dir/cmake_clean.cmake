file(REMOVE_RECURSE
  "../examples/nginx_workers"
  "../examples/nginx_workers.pdb"
  "CMakeFiles/nginx_workers.dir/nginx_workers.cpp.o"
  "CMakeFiles/nginx_workers.dir/nginx_workers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nginx_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
