file(REMOVE_RECURSE
  "../examples/fuzz_session"
  "../examples/fuzz_session.pdb"
  "CMakeFiles/fuzz_session.dir/fuzz_session.cpp.o"
  "CMakeFiles/fuzz_session.dir/fuzz_session.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
