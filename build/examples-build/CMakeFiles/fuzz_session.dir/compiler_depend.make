# Empty compiler generated dependencies file for fuzz_session.
# This may be replaced when dependencies are built.
