file(REMOVE_RECURSE
  "../bench/bench_fig07_nginx_throughput"
  "../bench/bench_fig07_nginx_throughput.pdb"
  "CMakeFiles/bench_fig07_nginx_throughput.dir/bench_fig07_nginx_throughput.cc.o"
  "CMakeFiles/bench_fig07_nginx_throughput.dir/bench_fig07_nginx_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_nginx_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
