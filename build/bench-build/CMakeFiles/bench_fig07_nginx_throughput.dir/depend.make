# Empty dependencies file for bench_fig07_nginx_throughput.
# This may be replaced when dependencies are built.
