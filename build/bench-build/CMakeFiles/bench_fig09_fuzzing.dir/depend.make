# Empty dependencies file for bench_fig09_fuzzing.
# This may be replaced when dependencies are built.
