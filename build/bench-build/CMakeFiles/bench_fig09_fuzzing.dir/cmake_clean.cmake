file(REMOVE_RECURSE
  "../bench/bench_fig09_fuzzing"
  "../bench/bench_fig09_fuzzing.pdb"
  "CMakeFiles/bench_fig09_fuzzing.dir/bench_fig09_fuzzing.cc.o"
  "CMakeFiles/bench_fig09_fuzzing.dir/bench_fig09_fuzzing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_fuzzing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
