# Empty compiler generated dependencies file for bench_ext_kvm.
# This may be replaced when dependencies are built.
