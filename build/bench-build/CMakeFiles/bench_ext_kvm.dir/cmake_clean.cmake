file(REMOVE_RECURSE
  "../bench/bench_ext_kvm"
  "../bench/bench_ext_kvm.pdb"
  "CMakeFiles/bench_ext_kvm.dir/bench_ext_kvm.cc.o"
  "CMakeFiles/bench_ext_kvm.dir/bench_ext_kvm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_kvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
