# Empty dependencies file for bench_fig04_instantiation.
# This may be replaced when dependencies are built.
