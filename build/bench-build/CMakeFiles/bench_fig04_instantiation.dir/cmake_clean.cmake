file(REMOVE_RECURSE
  "../bench/bench_fig04_instantiation"
  "../bench/bench_fig04_instantiation.pdb"
  "CMakeFiles/bench_fig04_instantiation.dir/bench_fig04_instantiation.cc.o"
  "CMakeFiles/bench_fig04_instantiation.dir/bench_fig04_instantiation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_instantiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
