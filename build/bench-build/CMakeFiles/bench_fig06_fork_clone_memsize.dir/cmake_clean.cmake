file(REMOVE_RECURSE
  "../bench/bench_fig06_fork_clone_memsize"
  "../bench/bench_fig06_fork_clone_memsize.pdb"
  "CMakeFiles/bench_fig06_fork_clone_memsize.dir/bench_fig06_fork_clone_memsize.cc.o"
  "CMakeFiles/bench_fig06_fork_clone_memsize.dir/bench_fig06_fork_clone_memsize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_fork_clone_memsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
