# Empty dependencies file for bench_fig06_fork_clone_memsize.
# This may be replaced when dependencies are built.
