file(REMOVE_RECURSE
  "../bench/bench_ablation_cloning"
  "../bench/bench_ablation_cloning.pdb"
  "CMakeFiles/bench_ablation_cloning.dir/bench_ablation_cloning.cc.o"
  "CMakeFiles/bench_ablation_cloning.dir/bench_ablation_cloning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cloning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
