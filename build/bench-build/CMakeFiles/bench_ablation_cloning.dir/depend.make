# Empty dependencies file for bench_ablation_cloning.
# This may be replaced when dependencies are built.
