file(REMOVE_RECURSE
  "../bench/bench_fig11_faas_scaling"
  "../bench/bench_fig11_faas_scaling.pdb"
  "CMakeFiles/bench_fig11_faas_scaling.dir/bench_fig11_faas_scaling.cc.o"
  "CMakeFiles/bench_fig11_faas_scaling.dir/bench_fig11_faas_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_faas_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
