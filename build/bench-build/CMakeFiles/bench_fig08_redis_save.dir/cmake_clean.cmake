file(REMOVE_RECURSE
  "../bench/bench_fig08_redis_save"
  "../bench/bench_fig08_redis_save.pdb"
  "CMakeFiles/bench_fig08_redis_save.dir/bench_fig08_redis_save.cc.o"
  "CMakeFiles/bench_fig08_redis_save.dir/bench_fig08_redis_save.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_redis_save.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
