# Empty compiler generated dependencies file for bench_fig08_redis_save.
# This may be replaced when dependencies are built.
