file(REMOVE_RECURSE
  "CMakeFiles/nephele_baseline.dir/linux_process.cc.o"
  "CMakeFiles/nephele_baseline.dir/linux_process.cc.o.d"
  "libnephele_baseline.a"
  "libnephele_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nephele_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
