file(REMOVE_RECURSE
  "libnephele_baseline.a"
)
