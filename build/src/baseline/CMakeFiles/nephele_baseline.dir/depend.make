# Empty dependencies file for nephele_baseline.
# This may be replaced when dependencies are built.
