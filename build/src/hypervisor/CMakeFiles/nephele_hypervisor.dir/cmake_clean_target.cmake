file(REMOVE_RECURSE
  "libnephele_hypervisor.a"
)
