
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypervisor/event_channel.cc" "src/hypervisor/CMakeFiles/nephele_hypervisor.dir/event_channel.cc.o" "gcc" "src/hypervisor/CMakeFiles/nephele_hypervisor.dir/event_channel.cc.o.d"
  "/root/repo/src/hypervisor/frame_table.cc" "src/hypervisor/CMakeFiles/nephele_hypervisor.dir/frame_table.cc.o" "gcc" "src/hypervisor/CMakeFiles/nephele_hypervisor.dir/frame_table.cc.o.d"
  "/root/repo/src/hypervisor/grant_table.cc" "src/hypervisor/CMakeFiles/nephele_hypervisor.dir/grant_table.cc.o" "gcc" "src/hypervisor/CMakeFiles/nephele_hypervisor.dir/grant_table.cc.o.d"
  "/root/repo/src/hypervisor/hypervisor.cc" "src/hypervisor/CMakeFiles/nephele_hypervisor.dir/hypervisor.cc.o" "gcc" "src/hypervisor/CMakeFiles/nephele_hypervisor.dir/hypervisor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/nephele_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nephele_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
