# Empty dependencies file for nephele_hypervisor.
# This may be replaced when dependencies are built.
