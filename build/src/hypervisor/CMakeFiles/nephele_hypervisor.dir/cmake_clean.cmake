file(REMOVE_RECURSE
  "CMakeFiles/nephele_hypervisor.dir/event_channel.cc.o"
  "CMakeFiles/nephele_hypervisor.dir/event_channel.cc.o.d"
  "CMakeFiles/nephele_hypervisor.dir/frame_table.cc.o"
  "CMakeFiles/nephele_hypervisor.dir/frame_table.cc.o.d"
  "CMakeFiles/nephele_hypervisor.dir/grant_table.cc.o"
  "CMakeFiles/nephele_hypervisor.dir/grant_table.cc.o.d"
  "CMakeFiles/nephele_hypervisor.dir/hypervisor.cc.o"
  "CMakeFiles/nephele_hypervisor.dir/hypervisor.cc.o.d"
  "libnephele_hypervisor.a"
  "libnephele_hypervisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nephele_hypervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
