# Empty compiler generated dependencies file for nephele_core.
# This may be replaced when dependencies are built.
