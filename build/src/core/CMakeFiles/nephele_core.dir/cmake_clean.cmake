file(REMOVE_RECURSE
  "CMakeFiles/nephele_core.dir/clone_engine.cc.o"
  "CMakeFiles/nephele_core.dir/clone_engine.cc.o.d"
  "CMakeFiles/nephele_core.dir/idc.cc.o"
  "CMakeFiles/nephele_core.dir/idc.cc.o.d"
  "CMakeFiles/nephele_core.dir/smp.cc.o"
  "CMakeFiles/nephele_core.dir/smp.cc.o.d"
  "CMakeFiles/nephele_core.dir/system.cc.o"
  "CMakeFiles/nephele_core.dir/system.cc.o.d"
  "CMakeFiles/nephele_core.dir/xencloned.cc.o"
  "CMakeFiles/nephele_core.dir/xencloned.cc.o.d"
  "libnephele_core.a"
  "libnephele_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nephele_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
