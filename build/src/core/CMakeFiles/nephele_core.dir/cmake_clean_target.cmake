file(REMOVE_RECURSE
  "libnephele_core.a"
)
