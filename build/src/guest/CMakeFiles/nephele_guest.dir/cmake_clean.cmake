file(REMOVE_RECURSE
  "CMakeFiles/nephele_guest.dir/arena.cc.o"
  "CMakeFiles/nephele_guest.dir/arena.cc.o.d"
  "CMakeFiles/nephele_guest.dir/guest_manager.cc.o"
  "CMakeFiles/nephele_guest.dir/guest_manager.cc.o.d"
  "CMakeFiles/nephele_guest.dir/ipc.cc.o"
  "CMakeFiles/nephele_guest.dir/ipc.cc.o.d"
  "CMakeFiles/nephele_guest.dir/ministack.cc.o"
  "CMakeFiles/nephele_guest.dir/ministack.cc.o.d"
  "CMakeFiles/nephele_guest.dir/mq.cc.o"
  "CMakeFiles/nephele_guest.dir/mq.cc.o.d"
  "CMakeFiles/nephele_guest.dir/p9_client.cc.o"
  "CMakeFiles/nephele_guest.dir/p9_client.cc.o.d"
  "CMakeFiles/nephele_guest.dir/posix.cc.o"
  "CMakeFiles/nephele_guest.dir/posix.cc.o.d"
  "libnephele_guest.a"
  "libnephele_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nephele_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
