
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/arena.cc" "src/guest/CMakeFiles/nephele_guest.dir/arena.cc.o" "gcc" "src/guest/CMakeFiles/nephele_guest.dir/arena.cc.o.d"
  "/root/repo/src/guest/guest_manager.cc" "src/guest/CMakeFiles/nephele_guest.dir/guest_manager.cc.o" "gcc" "src/guest/CMakeFiles/nephele_guest.dir/guest_manager.cc.o.d"
  "/root/repo/src/guest/ipc.cc" "src/guest/CMakeFiles/nephele_guest.dir/ipc.cc.o" "gcc" "src/guest/CMakeFiles/nephele_guest.dir/ipc.cc.o.d"
  "/root/repo/src/guest/ministack.cc" "src/guest/CMakeFiles/nephele_guest.dir/ministack.cc.o" "gcc" "src/guest/CMakeFiles/nephele_guest.dir/ministack.cc.o.d"
  "/root/repo/src/guest/mq.cc" "src/guest/CMakeFiles/nephele_guest.dir/mq.cc.o" "gcc" "src/guest/CMakeFiles/nephele_guest.dir/mq.cc.o.d"
  "/root/repo/src/guest/p9_client.cc" "src/guest/CMakeFiles/nephele_guest.dir/p9_client.cc.o" "gcc" "src/guest/CMakeFiles/nephele_guest.dir/p9_client.cc.o.d"
  "/root/repo/src/guest/posix.cc" "src/guest/CMakeFiles/nephele_guest.dir/posix.cc.o" "gcc" "src/guest/CMakeFiles/nephele_guest.dir/posix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nephele_core.dir/DependInfo.cmake"
  "/root/repo/build/src/toolstack/CMakeFiles/nephele_toolstack.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/nephele_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nephele_net.dir/DependInfo.cmake"
  "/root/repo/build/src/xenstore/CMakeFiles/nephele_xenstore.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/nephele_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nephele_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/nephele_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
