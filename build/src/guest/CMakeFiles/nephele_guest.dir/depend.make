# Empty dependencies file for nephele_guest.
# This may be replaced when dependencies are built.
