file(REMOVE_RECURSE
  "libnephele_guest.a"
)
