file(REMOVE_RECURSE
  "CMakeFiles/nephele_apps.dir/faas_app.cc.o"
  "CMakeFiles/nephele_apps.dir/faas_app.cc.o.d"
  "CMakeFiles/nephele_apps.dir/forkjoin_app.cc.o"
  "CMakeFiles/nephele_apps.dir/forkjoin_app.cc.o.d"
  "CMakeFiles/nephele_apps.dir/fuzz_target_app.cc.o"
  "CMakeFiles/nephele_apps.dir/fuzz_target_app.cc.o.d"
  "CMakeFiles/nephele_apps.dir/mem_app.cc.o"
  "CMakeFiles/nephele_apps.dir/mem_app.cc.o.d"
  "CMakeFiles/nephele_apps.dir/nginx_app.cc.o"
  "CMakeFiles/nephele_apps.dir/nginx_app.cc.o.d"
  "CMakeFiles/nephele_apps.dir/redis_app.cc.o"
  "CMakeFiles/nephele_apps.dir/redis_app.cc.o.d"
  "CMakeFiles/nephele_apps.dir/udp_ready_app.cc.o"
  "CMakeFiles/nephele_apps.dir/udp_ready_app.cc.o.d"
  "libnephele_apps.a"
  "libnephele_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nephele_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
