
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/faas_app.cc" "src/apps/CMakeFiles/nephele_apps.dir/faas_app.cc.o" "gcc" "src/apps/CMakeFiles/nephele_apps.dir/faas_app.cc.o.d"
  "/root/repo/src/apps/forkjoin_app.cc" "src/apps/CMakeFiles/nephele_apps.dir/forkjoin_app.cc.o" "gcc" "src/apps/CMakeFiles/nephele_apps.dir/forkjoin_app.cc.o.d"
  "/root/repo/src/apps/fuzz_target_app.cc" "src/apps/CMakeFiles/nephele_apps.dir/fuzz_target_app.cc.o" "gcc" "src/apps/CMakeFiles/nephele_apps.dir/fuzz_target_app.cc.o.d"
  "/root/repo/src/apps/mem_app.cc" "src/apps/CMakeFiles/nephele_apps.dir/mem_app.cc.o" "gcc" "src/apps/CMakeFiles/nephele_apps.dir/mem_app.cc.o.d"
  "/root/repo/src/apps/nginx_app.cc" "src/apps/CMakeFiles/nephele_apps.dir/nginx_app.cc.o" "gcc" "src/apps/CMakeFiles/nephele_apps.dir/nginx_app.cc.o.d"
  "/root/repo/src/apps/redis_app.cc" "src/apps/CMakeFiles/nephele_apps.dir/redis_app.cc.o" "gcc" "src/apps/CMakeFiles/nephele_apps.dir/redis_app.cc.o.d"
  "/root/repo/src/apps/udp_ready_app.cc" "src/apps/CMakeFiles/nephele_apps.dir/udp_ready_app.cc.o" "gcc" "src/apps/CMakeFiles/nephele_apps.dir/udp_ready_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guest/CMakeFiles/nephele_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nephele_core.dir/DependInfo.cmake"
  "/root/repo/build/src/toolstack/CMakeFiles/nephele_toolstack.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/nephele_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/xenstore/CMakeFiles/nephele_xenstore.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/nephele_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nephele_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nephele_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/nephele_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
