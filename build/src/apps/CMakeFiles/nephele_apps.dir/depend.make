# Empty dependencies file for nephele_apps.
# This may be replaced when dependencies are built.
