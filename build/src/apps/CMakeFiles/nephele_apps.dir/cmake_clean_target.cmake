file(REMOVE_RECURSE
  "libnephele_apps.a"
)
