file(REMOVE_RECURSE
  "libnephele_faas.a"
)
