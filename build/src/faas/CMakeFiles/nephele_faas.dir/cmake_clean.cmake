file(REMOVE_RECURSE
  "CMakeFiles/nephele_faas.dir/backend.cc.o"
  "CMakeFiles/nephele_faas.dir/backend.cc.o.d"
  "CMakeFiles/nephele_faas.dir/gateway.cc.o"
  "CMakeFiles/nephele_faas.dir/gateway.cc.o.d"
  "libnephele_faas.a"
  "libnephele_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nephele_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
