# Empty compiler generated dependencies file for nephele_faas.
# This may be replaced when dependencies are built.
