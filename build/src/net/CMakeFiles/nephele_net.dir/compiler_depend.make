# Empty compiler generated dependencies file for nephele_net.
# This may be replaced when dependencies are built.
