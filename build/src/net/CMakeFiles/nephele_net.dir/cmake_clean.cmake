file(REMOVE_RECURSE
  "CMakeFiles/nephele_net.dir/packet.cc.o"
  "CMakeFiles/nephele_net.dir/packet.cc.o.d"
  "CMakeFiles/nephele_net.dir/switch.cc.o"
  "CMakeFiles/nephele_net.dir/switch.cc.o.d"
  "libnephele_net.a"
  "libnephele_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nephele_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
