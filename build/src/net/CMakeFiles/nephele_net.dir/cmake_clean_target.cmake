file(REMOVE_RECURSE
  "libnephele_net.a"
)
