# Empty dependencies file for nephele_xenstore.
# This may be replaced when dependencies are built.
