file(REMOVE_RECURSE
  "libnephele_xenstore.a"
)
