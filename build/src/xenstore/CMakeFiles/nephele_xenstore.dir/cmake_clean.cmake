file(REMOVE_RECURSE
  "CMakeFiles/nephele_xenstore.dir/path.cc.o"
  "CMakeFiles/nephele_xenstore.dir/path.cc.o.d"
  "CMakeFiles/nephele_xenstore.dir/store.cc.o"
  "CMakeFiles/nephele_xenstore.dir/store.cc.o.d"
  "libnephele_xenstore.a"
  "libnephele_xenstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nephele_xenstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
