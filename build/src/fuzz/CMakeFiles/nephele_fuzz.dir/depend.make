# Empty dependencies file for nephele_fuzz.
# This may be replaced when dependencies are built.
