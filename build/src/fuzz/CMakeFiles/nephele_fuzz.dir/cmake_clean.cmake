file(REMOVE_RECURSE
  "CMakeFiles/nephele_fuzz.dir/afl.cc.o"
  "CMakeFiles/nephele_fuzz.dir/afl.cc.o.d"
  "CMakeFiles/nephele_fuzz.dir/coverage.cc.o"
  "CMakeFiles/nephele_fuzz.dir/coverage.cc.o.d"
  "CMakeFiles/nephele_fuzz.dir/fuzz_session.cc.o"
  "CMakeFiles/nephele_fuzz.dir/fuzz_session.cc.o.d"
  "CMakeFiles/nephele_fuzz.dir/kfx.cc.o"
  "CMakeFiles/nephele_fuzz.dir/kfx.cc.o.d"
  "libnephele_fuzz.a"
  "libnephele_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nephele_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
