file(REMOVE_RECURSE
  "libnephele_fuzz.a"
)
