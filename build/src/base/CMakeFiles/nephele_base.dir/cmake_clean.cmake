file(REMOVE_RECURSE
  "CMakeFiles/nephele_base.dir/log.cc.o"
  "CMakeFiles/nephele_base.dir/log.cc.o.d"
  "CMakeFiles/nephele_base.dir/status.cc.o"
  "CMakeFiles/nephele_base.dir/status.cc.o.d"
  "libnephele_base.a"
  "libnephele_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nephele_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
