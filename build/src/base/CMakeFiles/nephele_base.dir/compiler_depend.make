# Empty compiler generated dependencies file for nephele_base.
# This may be replaced when dependencies are built.
