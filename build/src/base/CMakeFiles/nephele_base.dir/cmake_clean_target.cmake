file(REMOVE_RECURSE
  "libnephele_base.a"
)
