# Empty compiler generated dependencies file for nephele_toolstack.
# This may be replaced when dependencies are built.
