file(REMOVE_RECURSE
  "libnephele_toolstack.a"
)
