file(REMOVE_RECURSE
  "CMakeFiles/nephele_toolstack.dir/domain_config.cc.o"
  "CMakeFiles/nephele_toolstack.dir/domain_config.cc.o.d"
  "CMakeFiles/nephele_toolstack.dir/toolstack.cc.o"
  "CMakeFiles/nephele_toolstack.dir/toolstack.cc.o.d"
  "libnephele_toolstack.a"
  "libnephele_toolstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nephele_toolstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
