
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/toolstack/domain_config.cc" "src/toolstack/CMakeFiles/nephele_toolstack.dir/domain_config.cc.o" "gcc" "src/toolstack/CMakeFiles/nephele_toolstack.dir/domain_config.cc.o.d"
  "/root/repo/src/toolstack/toolstack.cc" "src/toolstack/CMakeFiles/nephele_toolstack.dir/toolstack.cc.o" "gcc" "src/toolstack/CMakeFiles/nephele_toolstack.dir/toolstack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/nephele_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nephele_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/nephele_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/xenstore/CMakeFiles/nephele_xenstore.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/nephele_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nephele_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
