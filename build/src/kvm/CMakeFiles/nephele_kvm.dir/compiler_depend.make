# Empty compiler generated dependencies file for nephele_kvm.
# This may be replaced when dependencies are built.
