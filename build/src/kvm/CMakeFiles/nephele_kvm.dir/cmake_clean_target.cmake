file(REMOVE_RECURSE
  "libnephele_kvm.a"
)
