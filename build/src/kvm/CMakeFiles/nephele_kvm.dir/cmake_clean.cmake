file(REMOVE_RECURSE
  "CMakeFiles/nephele_kvm.dir/kvm_host.cc.o"
  "CMakeFiles/nephele_kvm.dir/kvm_host.cc.o.d"
  "CMakeFiles/nephele_kvm.dir/kvmcloned.cc.o"
  "CMakeFiles/nephele_kvm.dir/kvmcloned.cc.o.d"
  "libnephele_kvm.a"
  "libnephele_kvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nephele_kvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
