# Empty compiler generated dependencies file for nephele_devices.
# This may be replaced when dependencies are built.
