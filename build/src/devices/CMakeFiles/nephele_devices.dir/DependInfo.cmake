
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/console.cc" "src/devices/CMakeFiles/nephele_devices.dir/console.cc.o" "gcc" "src/devices/CMakeFiles/nephele_devices.dir/console.cc.o.d"
  "/root/repo/src/devices/device_manager.cc" "src/devices/CMakeFiles/nephele_devices.dir/device_manager.cc.o" "gcc" "src/devices/CMakeFiles/nephele_devices.dir/device_manager.cc.o.d"
  "/root/repo/src/devices/hostfs.cc" "src/devices/CMakeFiles/nephele_devices.dir/hostfs.cc.o" "gcc" "src/devices/CMakeFiles/nephele_devices.dir/hostfs.cc.o.d"
  "/root/repo/src/devices/netif.cc" "src/devices/CMakeFiles/nephele_devices.dir/netif.cc.o" "gcc" "src/devices/CMakeFiles/nephele_devices.dir/netif.cc.o.d"
  "/root/repo/src/devices/p9.cc" "src/devices/CMakeFiles/nephele_devices.dir/p9.cc.o" "gcc" "src/devices/CMakeFiles/nephele_devices.dir/p9.cc.o.d"
  "/root/repo/src/devices/vbd.cc" "src/devices/CMakeFiles/nephele_devices.dir/vbd.cc.o" "gcc" "src/devices/CMakeFiles/nephele_devices.dir/vbd.cc.o.d"
  "/root/repo/src/devices/xenbus.cc" "src/devices/CMakeFiles/nephele_devices.dir/xenbus.cc.o" "gcc" "src/devices/CMakeFiles/nephele_devices.dir/xenbus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/nephele_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nephele_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/nephele_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/xenstore/CMakeFiles/nephele_xenstore.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nephele_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
