file(REMOVE_RECURSE
  "CMakeFiles/nephele_devices.dir/console.cc.o"
  "CMakeFiles/nephele_devices.dir/console.cc.o.d"
  "CMakeFiles/nephele_devices.dir/device_manager.cc.o"
  "CMakeFiles/nephele_devices.dir/device_manager.cc.o.d"
  "CMakeFiles/nephele_devices.dir/hostfs.cc.o"
  "CMakeFiles/nephele_devices.dir/hostfs.cc.o.d"
  "CMakeFiles/nephele_devices.dir/netif.cc.o"
  "CMakeFiles/nephele_devices.dir/netif.cc.o.d"
  "CMakeFiles/nephele_devices.dir/p9.cc.o"
  "CMakeFiles/nephele_devices.dir/p9.cc.o.d"
  "CMakeFiles/nephele_devices.dir/vbd.cc.o"
  "CMakeFiles/nephele_devices.dir/vbd.cc.o.d"
  "CMakeFiles/nephele_devices.dir/xenbus.cc.o"
  "CMakeFiles/nephele_devices.dir/xenbus.cc.o.d"
  "libnephele_devices.a"
  "libnephele_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nephele_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
