file(REMOVE_RECURSE
  "libnephele_devices.a"
)
