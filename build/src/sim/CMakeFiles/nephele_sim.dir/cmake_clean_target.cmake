file(REMOVE_RECURSE
  "libnephele_sim.a"
)
