file(REMOVE_RECURSE
  "CMakeFiles/nephele_sim.dir/cost_model.cc.o"
  "CMakeFiles/nephele_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/nephele_sim.dir/event_loop.cc.o"
  "CMakeFiles/nephele_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/nephele_sim.dir/series.cc.o"
  "CMakeFiles/nephele_sim.dir/series.cc.o.d"
  "libnephele_sim.a"
  "libnephele_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nephele_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
