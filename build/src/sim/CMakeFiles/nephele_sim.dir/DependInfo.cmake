
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cc" "src/sim/CMakeFiles/nephele_sim.dir/cost_model.cc.o" "gcc" "src/sim/CMakeFiles/nephele_sim.dir/cost_model.cc.o.d"
  "/root/repo/src/sim/event_loop.cc" "src/sim/CMakeFiles/nephele_sim.dir/event_loop.cc.o" "gcc" "src/sim/CMakeFiles/nephele_sim.dir/event_loop.cc.o.d"
  "/root/repo/src/sim/series.cc" "src/sim/CMakeFiles/nephele_sim.dir/series.cc.o" "gcc" "src/sim/CMakeFiles/nephele_sim.dir/series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/nephele_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
