# Empty dependencies file for nephele_sim.
# This may be replaced when dependencies are built.
